package core

import (
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
)

// TracedSPU is the instrumented SPU runtime: every call is forwarded to
// the raw SPU after (or around) recording the corresponding PDT events,
// exactly as the paper's instrumented SPE libraries wrapped the spu_mfcio
// intrinsics. It implements cell.SPU, so workloads run unchanged.
type TracedSPU struct {
	u   cell.SPU
	run *speRun
}

var _ cell.SPU = (*TracedSPU)(nil)

// Unwrap returns the raw SPU (tests use it).
func (t *TracedSPU) Unwrap() cell.SPU { return t.u }

func (t *TracedSPU) Index() int  { return t.u.Index() }
func (t *TracedSPU) Now() uint64 { return t.u.Now() }

// LS exposes the local store; the top Config.SPEBufferSize bytes belong to
// the tracer and must not be touched by the application.
func (t *TracedSPU) LS() []byte { return t.u.LS() }

// AppLSLimit returns the number of local-store bytes available to the
// application (everything below the trace buffer).
func (t *TracedSPU) AppLSLimit() int { return t.run.lsBase }

func (t *TracedSPU) finish(exitCode uint32) {
	t.run.emit(event.Record{ID: event.SPEProgramEnd, Args: []uint64{uint64(exitCode)}})
	t.run.flush(true)
	t.run.finished = true
}

func (t *TracedSPU) Get(lsOff int, ea uint64, size int, tag int) {
	t.run.emit(event.Record{ID: event.SPEMFCGet,
		Args: []uint64{uint64(lsOff), ea, uint64(size), uint64(tag)}})
	t.u.Get(lsOff, ea, size, tag)
}

func (t *TracedSPU) Put(lsOff int, ea uint64, size int, tag int) {
	t.run.emit(event.Record{ID: event.SPEMFCPut,
		Args: []uint64{uint64(lsOff), ea, uint64(size), uint64(tag)}})
	t.u.Put(lsOff, ea, size, tag)
}

func listTotal(list []cell.ListElem) uint64 {
	var n uint64
	for _, el := range list {
		n += uint64(el.Size)
	}
	return n
}

func (t *TracedSPU) GetList(lsOff int, list []cell.ListElem, tag int) {
	t.run.emit(event.Record{ID: event.SPEMFCGetList,
		Args: []uint64{uint64(lsOff), uint64(len(list)), listTotal(list), uint64(tag)}})
	t.u.GetList(lsOff, list, tag)
}

func (t *TracedSPU) PutList(lsOff int, list []cell.ListElem, tag int) {
	t.run.emit(event.Record{ID: event.SPEMFCPutList,
		Args: []uint64{uint64(lsOff), uint64(len(list)), listTotal(list), uint64(tag)}})
	t.u.PutList(lsOff, list, tag)
}

func (t *TracedSPU) WaitTagAll(mask uint32) {
	t.run.emit(event.Record{ID: event.SPEWaitTagEnter, Args: []uint64{uint64(mask)}})
	t.u.WaitTagAll(mask)
	t.run.emit(event.Record{ID: event.SPEWaitTagExit, Args: []uint64{uint64(mask), uint64(mask)}})
}

func (t *TracedSPU) WaitTagAny(mask uint32) uint32 {
	t.run.emit(event.Record{ID: event.SPEWaitTagEnter, Args: []uint64{uint64(mask)}})
	done := t.u.WaitTagAny(mask)
	t.run.emit(event.Record{ID: event.SPEWaitTagExit, Args: []uint64{uint64(mask), uint64(done)}})
	return done
}

func (t *TracedSPU) TagStatus(mask uint32) uint32 { return t.u.TagStatus(mask) }

func (t *TracedSPU) ReadInMbox() uint32 {
	t.run.emit(event.Record{ID: event.SPEReadInMboxEnter})
	v := t.u.ReadInMbox()
	t.run.emit(event.Record{ID: event.SPEReadInMboxExit, Args: []uint64{uint64(v)}})
	return v
}

func (t *TracedSPU) TryReadInMbox() (uint32, bool) {
	// Polling reads are not evented (they would flood the trace); the
	// paper's PDT likewise traces the blocking entry points.
	return t.u.TryReadInMbox()
}

func (t *TracedSPU) InMboxCount() int { return t.u.InMboxCount() }

func (t *TracedSPU) WriteOutMbox(v uint32) {
	t.run.emit(event.Record{ID: event.SPEWriteOutMboxEnter, Args: []uint64{uint64(v)}})
	t.u.WriteOutMbox(v)
	t.run.emit(event.Record{ID: event.SPEWriteOutMboxExit, Args: []uint64{uint64(v)}})
}

func (t *TracedSPU) TryWriteOutMbox(v uint32) bool { return t.u.TryWriteOutMbox(v) }

func (t *TracedSPU) WriteOutIntrMbox(v uint32) {
	t.run.emit(event.Record{ID: event.SPEWriteIntrMboxEnter, Args: []uint64{uint64(v)}})
	t.u.WriteOutIntrMbox(v)
	t.run.emit(event.Record{ID: event.SPEWriteIntrMboxExit, Args: []uint64{uint64(v)}})
}

func (t *TracedSPU) ReadSignal1() uint32 { return t.readSignal(1) }
func (t *TracedSPU) ReadSignal2() uint32 { return t.readSignal(2) }

func (t *TracedSPU) readSignal(reg int) uint32 {
	t.run.emit(event.Record{ID: event.SPEReadSignalEnter, Args: []uint64{uint64(reg)}})
	var v uint32
	if reg == 1 {
		v = t.u.ReadSignal1()
	} else {
		v = t.u.ReadSignal2()
	}
	t.run.emit(event.Record{ID: event.SPEReadSignalExit, Args: []uint64{uint64(reg), uint64(v)}})
	return v
}

func (t *TracedSPU) Sndsig(spe int, reg int, v uint32, tag int) {
	t.run.emit(event.Record{ID: event.SPESndsig,
		Args: []uint64{uint64(spe), uint64(reg), uint64(v)}})
	t.u.Sndsig(spe, reg, v, tag)
}

func (t *TracedSPU) ReadDecr() uint32 { return t.u.ReadDecr() }

func (t *TracedSPU) Compute(cycles uint64) { t.u.Compute(cycles) }

// Atomic op codes recorded in SPE_ATOMIC_* events.
const (
	atomicOpCAS = 0
	atomicOpAdd = 1
)

func (t *TracedSPU) AtomicCAS(ea uint64, old, new uint64) bool {
	t.run.emit(event.Record{ID: event.SPEAtomicEnter, Args: []uint64{atomicOpCAS, ea}})
	ok := t.u.AtomicCAS(ea, old, new)
	var res uint64
	if ok {
		res = 1
	}
	t.run.emit(event.Record{ID: event.SPEAtomicExit, Args: []uint64{atomicOpCAS, res}})
	return ok
}

func (t *TracedSPU) AtomicAdd(ea uint64, delta uint64) uint64 {
	t.run.emit(event.Record{ID: event.SPEAtomicEnter, Args: []uint64{atomicOpAdd, ea}})
	v := t.u.AtomicAdd(ea, delta)
	t.run.emit(event.Record{ID: event.SPEAtomicExit, Args: []uint64{atomicOpAdd, v}})
	return v
}

// UserEvent records an application-defined point event (the PDT user-event
// API). Untraced runs reach the no-op path through the core.User helper.
func (t *TracedSPU) UserEvent(id uint32, a0, a1 uint64) {
	t.run.emit(event.Record{ID: event.SPEUserEvent, Args: []uint64{uint64(id), a0, a1}})
}

// UserLog records an application-defined string annotation.
func (t *TracedSPU) UserLog(msg string) {
	if len(msg) > event.MaxStrLen {
		msg = msg[:event.MaxStrLen]
	}
	t.run.emit(event.Record{ID: event.SPEUserLog, Flags: event.FlagHasStr, Str: msg})
}

// SyncEvent records a synchronization-library event (used by cellsync).
func (t *TracedSPU) SyncEvent(id event.ID, args ...uint64) {
	t.run.emit(event.Record{ID: id, Args: args})
}

// SPUUserTracer is the optional interface workloads probe (via the User
// helpers) to record application events.
type SPUUserTracer interface {
	UserEvent(id uint32, a0, a1 uint64)
	UserLog(msg string)
}

// SPUSyncTracer is probed by the cellsync library.
type SPUSyncTracer interface {
	SyncEvent(id event.ID, args ...uint64)
}

// User records an application event if spu is traced; otherwise it is a
// no-op, like PDT's compiled-out user macros.
func User(spu cell.SPU, id uint32, a0, a1 uint64) {
	if t, ok := spu.(SPUUserTracer); ok {
		t.UserEvent(id, a0, a1)
	}
}

// UserLog records a string annotation if spu is traced.
func UserLog(spu cell.SPU, msg string) {
	if t, ok := spu.(SPUUserTracer); ok {
		t.UserLog(msg)
	}
}

// Sync records a sync-library event if spu is traced.
func Sync(spu cell.SPU, id event.ID, args ...uint64) {
	if t, ok := spu.(SPUSyncTracer); ok {
		t.SyncEvent(id, args...)
	}
}
