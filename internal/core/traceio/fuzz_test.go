package traceio

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/celltrace/pdt/internal/core/event"
)

// buildValid produces a structurally valid trace for mutation testing.
func buildValid(t *testing.T) []byte {
	t.Helper()
	var out bytes.Buffer
	w, err := NewWriter(&out, Header{Version: Version, NumSPEs: 8, TimebaseDiv: 40, ClockHz: 3_200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(&Meta{
		Workload: "fuzz",
		Anchors:  []Anchor{{SPE: 0, Timebase: 100, Loaded: 0xFFFFFFFF, Program: "p"}},
	}); err != nil {
		t.Fatal(err)
	}
	var data []byte
	for i := 0; i < 40; i++ {
		r := event.Record{ID: event.SPEMFCGet, Core: 0, Flags: event.FlagDecrTime,
			Time: uint64(i * 10), Args: []uint64{0, 64, 128, uint64(i % 16)}}
		data, err = r.AppendTo(data)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteChunk(Chunk{Core: 0, AnchorIdx: 0, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestParseNeverPanicsOnMutations flips random bytes and truncates at
// random offsets: Parse and DecodeChunk must return errors or truncation
// flags, never panic.
func TestParseNeverPanicsOnMutations(t *testing.T) {
	valid := buildValid(t)
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for trial := 0; trial < 3000; trial++ {
		data := append([]byte(nil), valid...)
		// 1-4 random byte flips.
		for f := 0; f < 1+rng.Intn(4); f++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		// Random truncation half the time.
		if rng.Intn(2) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		f, err := Parse(data)
		if err != nil {
			continue
		}
		for _, c := range f.Chunks {
			_, _, _ = DecodeChunk(c)
		}
	}
}

// TestParseNeverPanicsOnGarbage feeds fully random buffers.
func TestParseNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for trial := 0; trial < 2000; trial++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		if trial%4 == 0 && len(data) >= 4 {
			copy(data, Magic) // force past the magic check sometimes
		}
		f, err := Parse(data)
		if err != nil {
			continue
		}
		for _, c := range f.Chunks {
			_, _, _ = DecodeChunk(c)
		}
	}
}

// TestDecodeRecordNeverPanics fuzzes the record decoder directly.
func TestDecodeRecordNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decoder panicked: %v", r)
		}
	}()
	for trial := 0; trial < 5000; trial++ {
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		_, _, _ = event.Decode(data)
	}
}
