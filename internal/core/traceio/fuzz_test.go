package traceio

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/celltrace/pdt/internal/core/event"
)

// buildValid produces a structurally valid trace for mutation testing.
func buildValid(t *testing.T) []byte {
	t.Helper()
	var out bytes.Buffer
	w, err := NewWriter(&out, Header{Version: Version, NumSPEs: 8, TimebaseDiv: 40, ClockHz: 3_200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(&Meta{
		Workload: "fuzz",
		Anchors:  []Anchor{{SPE: 0, Timebase: 100, Loaded: 0xFFFFFFFF, Program: "p"}},
	}); err != nil {
		t.Fatal(err)
	}
	var data []byte
	for i := 0; i < 40; i++ {
		r := event.Record{ID: event.SPEMFCGet, Core: 0, Flags: event.FlagDecrTime,
			Time: uint64(i * 10), Args: []uint64{0, 64, 128, uint64(i % 16)}}
		data, err = r.AppendTo(data)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteChunk(Chunk{Core: 0, AnchorIdx: 0, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestParseNeverPanicsOnMutations flips random bytes and truncates at
// random offsets: Parse and DecodeChunk must return errors or truncation
// flags, never panic.
func TestParseNeverPanicsOnMutations(t *testing.T) {
	valid := buildValid(t)
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for trial := 0; trial < 3000; trial++ {
		data := append([]byte(nil), valid...)
		// 1-4 random byte flips.
		for f := 0; f < 1+rng.Intn(4); f++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		// Random truncation half the time.
		if rng.Intn(2) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		f, err := Parse(data)
		if err != nil {
			continue
		}
		for _, c := range f.Chunks {
			_, _, _ = DecodeChunk(c)
		}
	}
}

// TestParseNeverPanicsOnGarbage feeds fully random buffers.
func TestParseNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for trial := 0; trial < 2000; trial++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		if trial%4 == 0 && len(data) >= 4 {
			copy(data, Magic) // force past the magic check sometimes
		}
		f, err := Parse(data)
		if err != nil {
			continue
		}
		for _, c := range f.Chunks {
			_, _, _ = DecodeChunk(c)
		}
	}
}

// FuzzSalvage mutates a known-valid trace (flip, insert, delete, truncate
// — parameters chosen by the fuzzer) and checks the salvage invariants:
// Salvage never panics, the report's byte accounting is exact and
// disjoint, and every CRC-verified chunk in the salvaged file is byte-
// identical to a chunk of the original — so recovered (verified) records
// are always a subsequence of the records originally written.
func FuzzSalvage(f *testing.F) {
	f.Add(uint32(0), uint8(0), uint8(0x5A), uint16(0))
	f.Add(uint32(30), uint8(1), uint8(0xC5), uint16(0)) // insert a fake chunk magic
	f.Add(uint32(60), uint8(2), uint8(0), uint16(0))    // delete inside meta
	f.Add(uint32(100), uint8(0), uint8(0xFF), uint16(50))
	f.Add(uint32(4), uint8(0), uint8(1), uint16(0)) // version field flip
	f.Add(uint32(0), uint8(3), uint8(0), uint16(9)) // footer-only truncation
	f.Fuzz(func(t *testing.T, pos uint32, op, val uint8, cut uint16) {
		valid := buildValid(t)
		orig, err := Parse(valid)
		if err != nil {
			t.Fatalf("base trace does not parse: %v", err)
		}
		data := append([]byte(nil), valid...)
		p := int(pos) % len(data)
		switch op % 4 {
		case 0: // flip
			data[p] ^= val | 1
		case 1: // insert
			data = append(data[:p:p], append([]byte{val}, data[p:]...)...)
		case 2: // delete
			data = append(data[:p:p], data[p+1:]...)
		case 3: // mutation-free (truncation only below)
		}
		if c := int(cut) % (len(data) + 1); c > 0 {
			data = data[:len(data)-c]
		}

		sf, rep, _ := Salvage(data)
		if rep == nil {
			t.Fatal("nil salvage report")
		}
		sum := rep.BytesStructural + rep.BytesRecovered + rep.BytesDamaged + rep.BytesSkipped
		if sum != rep.BytesTotal || rep.BytesTotal != len(data) {
			t.Fatalf("byte accounting: %d+%d+%d+%d = %d, want %d",
				rep.BytesStructural, rep.BytesRecovered, rep.BytesDamaged,
				rep.BytesSkipped, sum, len(data))
		}
		if sf == nil {
			return
		}
		for _, c := range sf.Chunks {
			if len(c.Data) == 0 || ChunkCRC(c) != c.CRC {
				// Damaged chunks are kept as best-effort prefixes; empty
				// chunks contribute no records either way.
				continue
			}
			match := false
			for _, oc := range orig.Chunks {
				if c.Core == oc.Core && c.AnchorIdx == oc.AnchorIdx && bytes.Equal(c.Data, oc.Data) {
					match = true
					break
				}
			}
			if !match {
				t.Fatalf("verified chunk (core %d, %d bytes) matches no original chunk",
					c.Core, len(c.Data))
			}
		}
	})
}

// TestDecodeRecordNeverPanics fuzzes the record decoder directly.
func TestDecodeRecordNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decoder panicked: %v", r)
		}
	}()
	for trial := 0; trial < 5000; trial++ {
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		_, _, _ = event.Decode(data)
	}
}
