package traceio

import (
	"context"
	"errors"
	"fmt"
)

// Limits bounds the resources a single trace is allowed to consume while
// being parsed, decoded, or salvaged. The zero value means "no limit" for
// every field, which preserves the historical trusted-operator behavior;
// services exposed to untrusted inputs should start from
// DefaultServiceLimits and tighten per deployment.
//
// Limits are admission control, not accounting: a field is checked against
// the header-declared size of a structure *before* the corresponding
// allocation or decode work happens, so a hostile trace whose headers
// declare absurd sizes is rejected with ErrLimitExceeded instead of
// driving a giant allocation and getting OOM-killed later.
type Limits struct {
	// MaxFileBytes caps the total input size accepted by ReadContext and
	// ParseContext.
	MaxFileBytes int64
	// MaxMetaBytes caps the declared length of the XML metadata blob.
	MaxMetaBytes int
	// MaxChunkBytes caps the declared data length of a single chunk.
	MaxChunkBytes int
	// MaxRecords caps the number of records decoded from one trace
	// (enforced cumulatively by the analyzer across chunks, and per chunk
	// by DecodeChunkContext).
	MaxRecords int
	// MaxDecodeBytes budgets the memory the decoded in-core event
	// representation may take (enforced by the analyzer, which knows its
	// per-event footprint).
	MaxDecodeBytes int64
	// StreamWindowBytes budgets the working memory of a streaming load
	// (analyzer.StreamLoader): decoded-but-unmerged chunks are folded into
	// the incremental kernels whenever their footprint reaches this
	// window. It bounds resident memory, not input size — unlike the caps
	// above it is a pacing knob, not admission control, so setting it
	// alone does not flip Unlimited. Zero means the streaming default.
	StreamWindowBytes int64
}

// Unlimited reports whether every admission-control field is zero.
// StreamWindowBytes is excluded: it paces streaming memory but admits
// nothing, so a window on its own leaves the trusted-operator behavior
// (no caps) intact.
func (l Limits) Unlimited() bool {
	l.StreamWindowBytes = 0
	return l == Limits{}
}

// DefaultServiceLimits are the admission-control bounds pdt-tad ships
// with: generous enough for any trace the simulator produces, small
// enough that a hostile input cannot take the process down.
func DefaultServiceLimits() Limits {
	return Limits{
		MaxFileBytes:   256 << 20, // 256 MiB input file
		MaxMetaBytes:   4 << 20,   // 4 MiB metadata blob
		MaxChunkBytes:  64 << 20,  // 64 MiB per chunk
		MaxRecords:     50_000_000,
		MaxDecodeBytes: 2 << 30, // 2 GiB of decoded events
	}
}

// ErrLimitExceeded marks input rejected by admission control: some header
// field declared a size beyond the configured Limits. It is deliberately
// distinct from ErrCorrupt — the file may be perfectly well formed, just
// bigger than this consumer is willing to process.
var ErrLimitExceeded = errors.New("traceio: resource limit exceeded")

// limitErr builds a typed admission-control failure.
func limitErr(what string, declared, max int64) error {
	return fmt.Errorf("%w: %s %d exceeds limit %d", ErrLimitExceeded, what, declared, max)
}

// ctxStride is how many loop iterations scanners run between context
// checks: frequent enough that cancellation propagates in well under the
// 100 ms budget, rare enough to stay off the profile.
const ctxStride = 4096

// checkEvery polls ctx.Err once per stride calls. Callers pass a loop
// counter; the check runs when n is a multiple of ctxStride.
func checkEvery(ctx context.Context, n int) error {
	if n%ctxStride == 0 {
		return ctx.Err()
	}
	return nil
}
