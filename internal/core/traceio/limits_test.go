package traceio

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"runtime"
	"testing"

	"github.com/celltrace/pdt/internal/core/event"
)

// hostileDeclaredLength builds a ~1 KiB file whose single chunk header
// declares a 2 GiB data length: the classic "length field from hell" that
// must never drive a length-proportional allocation.
func hostileDeclaredLength(t *testing.T) []byte {
	t.Helper()
	var out bytes.Buffer
	w, err := NewWriter(&out, Header{Version: Version, NumSPEs: 8, TimebaseDiv: 40, ClockHz: 3_200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(&Meta{Workload: "hostile"}); err != nil {
		t.Fatal(err)
	}
	hdr := []byte{ChunkMagic, event.CorePPE}
	hdr = binary.LittleEndian.AppendUint16(hdr, NoAnchor)
	hdr = binary.LittleEndian.AppendUint32(hdr, 2<<30) // declares 2 GiB
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)     // bogus chunk CRC
	out.Write(hdr)
	out.Write(make([]byte, 1024)) // only 1 KiB actually present
	return out.Bytes()
}

// TestParseHostileDeclaredLengthNoAllocation is the regression test for
// the declared-length cap: parsing a 1 KiB file whose chunk header
// declares 2 GiB must complete (as a truncated trace) while allocating
// nowhere near the declared size — the chunk data is sliced from the
// input, capped at min(declared, remaining).
func TestParseHostileDeclaredLengthNoAllocation(t *testing.T) {
	data := hostileDeclaredLength(t)
	if len(data) > 2048 {
		t.Fatalf("hostile file unexpectedly large: %d bytes", len(data))
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f, err := Parse(data)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !f.Truncated {
		t.Fatal("a 2 GiB declaration in a 1 KiB file must parse as truncated")
	}
	// TotalAlloc is monotonic; the delta bounds everything Parse touched.
	// 1 MiB is three orders of magnitude under the declared length while
	// leaving room for test-harness noise.
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<20 {
		t.Fatalf("Parse of 1 KiB hostile file allocated %d bytes", delta)
	}

	// Decoding the (empty) chunks must be equally indifferent.
	for _, c := range f.Chunks {
		if _, _, err := DecodeChunk(c); err != nil {
			t.Fatalf("DecodeChunk: %v", err)
		}
	}
}

// TestParseChunkLimitRejected: with MaxChunkBytes set, the same hostile
// header is rejected up front with the typed error.
func TestParseChunkLimitRejected(t *testing.T) {
	data := hostileDeclaredLength(t)
	_, err := ParseContext(context.Background(), data, Limits{MaxChunkBytes: 16 << 20})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
}

// TestParseMetaLimitRejected: a metadata length over MaxMetaBytes is
// rejected before the XML decoder runs.
func TestParseMetaLimitRejected(t *testing.T) {
	var out bytes.Buffer
	w, err := NewWriter(&out, Header{Version: Version, NumSPEs: 8, TimebaseDiv: 40})
	if err != nil {
		t.Fatal(err)
	}
	_ = w // header only; append a huge declared metadata length by hand
	data := out.Bytes()
	data = binary.LittleEndian.AppendUint32(data, 1<<30)
	data = append(data, make([]byte, 64)...)

	_, err = ParseContext(context.Background(), data, Limits{MaxMetaBytes: 4 << 20})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
	// Without limits the same input is merely truncated, not an error.
	f, err := Parse(data)
	if err != nil || !f.Truncated {
		t.Fatalf("unlimited parse: err=%v truncated=%v", err, f.Truncated)
	}
}

// TestFileSizeLimit covers both the in-memory and streaming entry points.
func TestFileSizeLimit(t *testing.T) {
	data := make([]byte, 4096)
	lim := Limits{MaxFileBytes: 1024}
	if _, err := ParseContext(context.Background(), data, lim); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("ParseContext: want ErrLimitExceeded, got %v", err)
	}
	if _, err := ReadContext(context.Background(), bytes.NewReader(data), lim); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("ReadContext: want ErrLimitExceeded, got %v", err)
	}
}

// TestDecodeChunkRecordCap: the per-chunk record cap trips with the typed
// error, and the preallocation honors the cap rather than the chunk size.
func TestDecodeChunkRecordCap(t *testing.T) {
	var data []byte
	var err error
	for i := 0; i < 100; i++ {
		r := event.Record{ID: event.SPEMFCGet, Core: 0, Flags: event.FlagDecrTime,
			Time: uint64(i), Args: []uint64{0, 64, 128, 1}}
		data, err = r.AppendTo(data)
		if err != nil {
			t.Fatal(err)
		}
	}
	c := Chunk{Core: 0, AnchorIdx: 0, Data: data}
	recs, _, err := DecodeChunkContext(context.Background(), c, Limits{MaxRecords: 10})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v (%d records)", err, len(recs))
	}
	if len(recs) > 11 {
		t.Fatalf("decoded %d records past a cap of 10", len(recs))
	}
}

// TestParseSalvageCancelled: an already-cancelled context stops both
// scanners with ctx.Err().
func TestParseSalvageCancelled(t *testing.T) {
	data := hostileDeclaredLength(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParseContext(ctx, data, Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParseContext: want context.Canceled, got %v", err)
	}
	f, rep, err := SalvageContext(ctx, data)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SalvageContext: want context.Canceled, got %v", err)
	}
	if f != nil || rep == nil {
		t.Fatalf("cancelled salvage: file=%v report=%v", f, rep)
	}
}
