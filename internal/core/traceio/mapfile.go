package traceio

import "os"

// MappedFile is a read-only byte view of a trace file, memory-mapped when
// the platform supports it and read into the heap otherwise. Both cases
// present the same interface: Data returns the full contents, Close
// releases them. ParseContext slices chunk data out of the buffer without
// copying, so on the mmap path record decoding reads straight out of the
// page cache — the load pipeline copies what it keeps into its column
// arenas before Close unmaps the region.
type MappedFile struct {
	data   []byte
	mapped bool // true when data must be munmap'ed, not just dropped
}

// Data returns the file contents. The slice is only valid until Close.
func (m *MappedFile) Data() []byte { return m.data }

// Mapped reports whether the contents are memory-mapped rather than
// heap-allocated (always false on platforms without mmap support).
func (m *MappedFile) Mapped() bool { return m.mapped }

// Close releases the mapping or the fallback buffer. After Close, any
// slice derived from Data — including chunk Data from ParseContext — is
// invalid. Close is idempotent.
func (m *MappedFile) Close() error {
	data, mapped := m.data, m.mapped
	m.data, m.mapped = nil, false
	if mapped {
		return unmapData(data)
	}
	return nil
}

// MapFile opens path for zero-copy reading. Empty files yield an empty
// (unmapped) view, and any mmap failure falls back to a plain read so
// callers never need a second code path.
func MapFile(path string) (*MappedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > 0 && int64(int(size)) == size {
		if data, err := mapData(f, int(size)); err == nil {
			return &MappedFile{data: data, mapped: true}, nil
		}
	}
	// Fallback: empty file, absurd size, unsupported platform, or a
	// filesystem that refuses mmap. ReadFile keeps the same semantics.
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &MappedFile{data: data}, nil
}
