//go:build !unix

package traceio

import (
	"errors"
	"os"
)

// mapData always fails on platforms without mmap support; MapFile then
// takes the plain-read fallback.
func mapData(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("traceio: mmap unsupported on this platform")
}

// unmapData is unreachable on non-mmap platforms.
func unmapData(data []byte) error { return nil }
