package traceio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/celltrace/pdt/internal/core/event"
)

// writeTestTrace encodes a minimal valid trace to a temp file.
func writeTestTrace(t *testing.T) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Version: Version, NumSPEs: 1, TimebaseDiv: 1, ClockHz: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(&Meta{Anchors: []Anchor{{SPE: 0, Timebase: 100}}}); err != nil {
		t.Fatal(err)
	}
	recs := []event.Record{
		{ID: event.SPEProgramStart, Core: 0, Flags: event.FlagDecrTime, Time: 0, Args: []uint64{1}},
		{ID: event.SPEProgramEnd, Core: 0, Flags: event.FlagDecrTime, Time: 50, Args: []uint64{0}},
	}
	var data []byte
	for _, r := range recs {
		if data, err = r.AppendTo(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteChunk(Chunk{Core: 0, AnchorIdx: 0, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.pdt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, len(recs)
}

func TestMapFileParsesLikeRead(t *testing.T) {
	path, nrec := writeTestTrace(t)
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data(), raw) {
		t.Fatal("mapped contents differ from plain read")
	}
	f, err := Parse(m.Data())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(f.Chunks))
	}
	recs, truncated, err := DecodeChunk(f.Chunks[0])
	if err != nil || truncated {
		t.Fatalf("decode: err=%v truncated=%v", err, truncated)
	}
	if len(recs) != nrec {
		t.Fatalf("records = %d, want %d", len(recs), nrec)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if m.Data() != nil {
		t.Fatal("Data non-nil after Close")
	}
}

func TestMapFileEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.pdt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(m.Data()) != 0 {
		t.Fatalf("empty file mapped to %d bytes", len(m.Data()))
	}
	if m.Mapped() {
		t.Fatal("empty file reported as mapped")
	}
}

func TestMapFileMissing(t *testing.T) {
	if _, err := MapFile(filepath.Join(t.TempDir(), "nope.pdt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestDecodeChunkSharedArena pins the allocation contract: decoding a
// chunk must not allocate one Args slice per record.
func TestDecodeChunkSharedArena(t *testing.T) {
	var data []byte
	var err error
	for i := 0; i < 64; i++ {
		r := event.Record{ID: event.SPEMFCGet, Core: 0, Flags: event.FlagDecrTime,
			Time: uint64(i), Args: []uint64{uint64(i), 0x1000, 128, 3}}
		if data, err = r.AppendTo(data); err != nil {
			t.Fatal(err)
		}
	}
	c := Chunk{Core: 0, Data: data}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := DecodeChunk(c); err != nil {
			t.Fatal(err)
		}
	})
	// One records slice + one argument arena (plus test-harness noise
	// headroom); the old per-record make([]uint64) cost 64 allocations.
	if allocs > 8 {
		t.Fatalf("DecodeChunk allocations = %.0f, want <= 8", allocs)
	}
}
