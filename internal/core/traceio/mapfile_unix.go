//go:build unix

package traceio

import (
	"os"
	"syscall"
)

// mapData memory-maps size bytes of f read-only.
func mapData(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

// unmapData releases a mapping created by mapData.
func unmapData(data []byte) error {
	return syscall.Munmap(data)
}
