package traceio

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/celltrace/pdt/internal/core/event"
)

// CoreSalvage accounts salvage results for one core's chunks.
type CoreSalvage struct {
	ChunksRecovered  int // chunk CRC verified (or v1 chunk that decoded cleanly)
	ChunksDamaged    int // kept, but CRC mismatch or trimmed to a decodable prefix
	ChunksDropped    int // identified but unusable (SPE chunk with no surviving anchor)
	RecordsRecovered int // records decodable from the kept chunks
	BytesRecovered   int // chunk data bytes kept
	BytesDamaged     int // chunk data bytes identified but discarded
}

// SalvageReport describes what Salvage recovered and what it gave up on.
// Byte accounting is exact and disjoint:
//
//	BytesStructural + BytesRecovered + BytesDamaged + BytesSkipped == BytesTotal
type SalvageReport struct {
	BytesTotal      int // input length
	BytesStructural int // header, metadata, chunk headers, footer
	BytesRecovered  int // chunk data kept (sum over cores)
	BytesDamaged    int // chunk data identified but discarded
	BytesSkipped    int // unidentifiable bytes passed over while resyncing

	HeaderOK bool // fixed header parsed
	MetaOK   bool // metadata blob parsed
	FooterOK bool // footer present with matching file CRC

	ChunksRecovered  int
	ChunksDamaged    int
	ChunksDropped    int
	RecordsRecovered int
	Resyncs          int // times the scanner had to hunt for the next chunk magic

	PerCore map[uint8]*CoreSalvage
	Notes   []string // human-readable findings, in file order
}

// Clean reports whether the file needed no repair at all.
func (r *SalvageReport) Clean() bool {
	return r.HeaderOK && r.MetaOK && r.FooterOK &&
		r.ChunksDamaged == 0 && r.ChunksDropped == 0 &&
		r.BytesSkipped == 0 && r.BytesDamaged == 0
}

func (r *SalvageReport) core(c uint8) *CoreSalvage {
	if r.PerCore == nil {
		r.PerCore = map[uint8]*CoreSalvage{}
	}
	cs := r.PerCore[c]
	if cs == nil {
		cs = &CoreSalvage{}
		r.PerCore[c] = cs
	}
	return cs
}

func (r *SalvageReport) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// ErrUnsalvageable is returned by Salvage when nothing usable survives:
// no header, no metadata, and no decodable chunk.
var ErrUnsalvageable = errors.New("traceio: nothing recoverable")

// maxPlausibleSPE bounds the SPE index a chunk header may carry (Cell
// machines top out at 16 SPEs; the resync scanner uses this to reject
// false chunk magics).
const maxPlausibleSPE = 16

// Salvage recovers as much of a damaged trace as possible. It parses the
// header and metadata leniently, resynchronizes on chunk magic bytes past
// corrupted or inserted regions, verifies each candidate chunk against its
// header CRC (version 2), trims structurally corrupt chunks to their
// decodable prefix, and tolerates a missing footer or file-CRC mismatch.
//
// The returned File contains only usable chunks: every chunk's Data
// decodes without structural errors, and every SPE chunk's AnchorIdx
// resolves in the (possibly lost) metadata. The report is always non-nil.
// The error is non-nil only when nothing at all was recoverable.
//
// For a single-point corruption (one flipped, inserted, or deleted byte
// region) every chunk before the damage is recovered verbatim, and intact
// chunks after it are recovered by resync.
func Salvage(data []byte) (*File, *SalvageReport, error) {
	return SalvageContext(context.Background(), data)
}

// SalvageContext is Salvage under cancellation: the scanner polls ctx
// between chunks and while resynchronizing, so a deadline or cancel stops
// a salvage of arbitrarily damaged input promptly. On cancellation the
// file is dropped and ctx.Err() returned; the report still describes the
// prefix scanned so far (its byte accounting is exact only for completed
// runs).
func SalvageContext(ctx context.Context, data []byte) (*File, *SalvageReport, error) {
	rep := &SalvageReport{BytesTotal: len(data)}
	f := &File{}
	off := 0

	hf, hoff, err := parseHeaderMeta(data, Limits{})
	switch {
	case err == nil && !hf.Truncated:
		f.Header = hf.Header
		f.Meta = hf.Meta
		rep.HeaderOK = true
		rep.MetaOK = true
		rep.BytesStructural += hoff
		off = hoff
	case err == nil:
		// Header parsed but the metadata blob ran off the end (or its
		// length field is damaged); rescan for chunks instead.
		f.Header = hf.Header
		rep.HeaderOK = true
		rep.BytesStructural += headerLen
		off = resync(data, headerLen, rep)
		rep.note("metadata unreadable; scanned forward to offset %d for chunks", off)
	case errors.Is(err, ErrBadMagic):
		// No usable header: assume the current version's layout and hunt
		// for chunks.
		f.Header = Header{Version: Version, NumSPEs: maxPlausibleSPE}
		rep.note("file header unusable (%v); assuming version %d layout", err, Version)
		off = resync(data, 0, rep)
	default:
		// Magic matched but the version or metadata is garbage: keep the
		// raw header fields and scan for chunks under the current layout.
		f.Header.Version = Version
		f.Header.NumSPEs = data[6]
		f.Header.TimebaseDiv = binary.LittleEndian.Uint64(data[7:15])
		f.Header.ClockHz = binary.LittleEndian.Uint64(data[15:23])
		rep.BytesStructural += headerLen
		rep.note("header or metadata damaged (%v); scanning for chunks", err)
		off = resync(data, headerLen, rep)
	}

	chdr := chunkHeaderLen(f.Header.Version)
	sawValidFooter := false
	// synced: the previous structure parsed cleanly, so a plausible chunk
	// header at off is trusted even if its payload is damaged. After a
	// resync the next candidate must additionally prove itself (CRC match
	// or at least one decodable record).
	synced := rep.MetaOK

	for iter := 0; off < len(data); iter++ {
		if err := checkEvery(ctx, iter); err != nil {
			return nil, rep, err
		}
		if isFooterAt(data, off) {
			want := binary.LittleEndian.Uint32(data[off+4 : off+8])
			if crc32.ChecksumIEEE(data[:off]) == want {
				rep.FooterOK = true
				sawValidFooter = true
			} else {
				rep.note("footer CRC mismatch at offset %d", off)
			}
			rep.BytesStructural += 8
			off += 8
			if off < len(data) {
				rep.note("%d trailing bytes after footer ignored", len(data)-off)
				rep.BytesSkipped += len(data) - off
			}
			break
		}
		used, trusted, ok := salvageChunkAt(data, off, chdr, f, rep, synced)
		if !ok {
			// Not a chunk here: skip this byte and scan for the next
			// candidate boundary.
			rep.BytesSkipped++
			off = resync(data, off+1, rep)
			synced = false
			continue
		}
		// Only a verified chunk (or one whose claimed length landed on a
		// believable boundary) leaves the scanner at a trusted position;
		// after a trimmed chunk the next candidate must prove itself.
		synced = trusted
		off += used
	}
	f.Truncated = !sawValidFooter

	if !rep.HeaderOK && !rep.MetaOK && len(f.Chunks) == 0 {
		return nil, rep, fmt.Errorf("%w (%d bytes scanned)", ErrUnsalvageable, len(data))
	}
	return f, rep, nil
}

// isFooterAt reports whether a complete footer starts at off.
func isFooterAt(data []byte, off int) bool {
	return len(data)-off >= 8 && string(data[off:off+4]) == FooterMagic
}

// plausibleChunkHeader checks the cheap structural constraints of a chunk
// header at off: magic, a core byte that names an SPE or a PPE stream, and
// an anchor index that is NoAnchor or resolvable (when metadata survived).
func plausibleChunkHeader(data []byte, off, chdr int, f *File, haveMeta bool) bool {
	if len(data)-off < chdr || data[off] != ChunkMagic {
		return false
	}
	core := data[off+1]
	if core >= maxPlausibleSPE && core < event.CorePPEBase {
		return false
	}
	anchorIdx := binary.LittleEndian.Uint16(data[off+2 : off+4])
	if anchorIdx != NoAnchor && haveMeta && int(anchorIdx) >= len(f.Meta.Anchors) {
		return false
	}
	return true
}

// boundaryAt reports whether off is a believable next-structure position:
// end of input, a footer, or another chunk magic.
func boundaryAt(data []byte, off int) bool {
	return off == len(data) || isFooterAt(data, off) ||
		(off < len(data) && data[off] == ChunkMagic)
}

// salvageChunkAt attempts to recover the chunk starting at off, appending
// it to f when usable and accounting every consumed byte in rep. It
// returns the bytes consumed and whether a chunk structure was identified
// at all (ok=false means "this is not a chunk — resync").
func salvageChunkAt(data []byte, off, chdr int, f *File, rep *SalvageReport, synced bool) (used int, trusted, ok bool) {
	if !plausibleChunkHeader(data, off, chdr, f, rep.MetaOK) {
		return 0, false, false
	}
	core := data[off+1]
	anchorIdx := binary.LittleEndian.Uint16(data[off+2 : off+4])
	clen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
	var hdrCRC uint32
	if chdr == 12 {
		hdrCRC = binary.LittleEndian.Uint32(data[off+8 : off+12])
	}
	body := off + chdr

	overEOF := body+clen > len(data)
	avail := clen
	if overEOF {
		avail = len(data) - body
	}
	raw := data[body : body+avail]

	verified := chdr == 12 && !overEOF &&
		ChunkCRC(Chunk{Core: core, AnchorIdx: anchorIdx, Data: raw}) == hdrCRC
	recs, decodable := decodablePrefix(raw)
	if chdr != 12 && !overEOF && decodable == len(raw) {
		// Version 1 chunk with no CRC to check: a full clean decode is
		// the best evidence available.
		verified = true
	}

	if !synced && recs == 0 && !(verified && clen > 0) {
		// A resync candidate must prove itself: a non-empty CRC match or
		// at least one decodable record. (An empty chunk's CRC matching
		// proves nothing — the checksum of zero bytes is always zero.)
		return 0, false, false
	}

	// Decide how far to trust the header's length. A verified chunk
	// consumes exactly its claimed extent. A damaged one consumes its
	// claimed extent only when that lands on a believable boundary
	// (otherwise the length field itself is suspect, so give the scanner
	// the tail back rather than swallowing later chunks).
	keptBytes := decodable // data bytes credited to this chunk
	var damagedTail int    // consumed data bytes beyond the kept prefix
	switch {
	case verified:
		used = chdr + clen
		keptBytes = len(raw)
		trusted = true
	case !overEOF && boundaryAt(data, body+clen):
		used = chdr + clen
		damagedTail = clen - decodable
		trusted = true
	default:
		used = chdr + decodable
	}
	rep.BytesStructural += chdr

	cs := rep.core(core)
	if verified {
		cs.ChunksRecovered++
		rep.ChunksRecovered++
	} else {
		cs.ChunksDamaged++
		rep.ChunksDamaged++
		if overEOF {
			rep.note("core %d: chunk at offset %d truncated at EOF (%d of %d bytes decodable)",
				core, off, decodable, avail)
		} else {
			rep.note("core %d: chunk at offset %d damaged (%d of %d bytes decodable, %d records)",
				core, off, decodable, clen, recs)
		}
	}

	// An SPE chunk whose anchor did not survive cannot be placed on the
	// global timeline; account it but keep it out of the file.
	if core < event.CorePPEBase &&
		(anchorIdx == NoAnchor || int(anchorIdx) >= len(f.Meta.Anchors)) {
		if verified {
			// Reclassify: identified and intact, but unusable.
			cs.ChunksRecovered--
			rep.ChunksRecovered--
			cs.ChunksDamaged++
			rep.ChunksDamaged++
		}
		cs.ChunksDropped++
		rep.ChunksDropped++
		cs.BytesDamaged += keptBytes + damagedTail
		rep.BytesDamaged += keptBytes + damagedTail
		rep.note("core %d: chunk at offset %d dropped (anchor %d lost with metadata)",
			core, off, anchorIdx)
		return used, trusted, true
	}

	keep := raw
	if !verified {
		keep = raw[:decodable]
	}
	f.Chunks = append(f.Chunks, Chunk{Core: core, AnchorIdx: anchorIdx, Data: keep, CRC: hdrCRC})
	cs.RecordsRecovered += recs
	rep.RecordsRecovered += recs
	cs.BytesRecovered += keptBytes
	rep.BytesRecovered += keptBytes
	cs.BytesDamaged += damagedTail
	rep.BytesDamaged += damagedTail
	return used, trusted, true
}

// decodablePrefix returns how many records decode from the front of data
// and the byte length of that structurally sound prefix (zero padding runs
// included, a trailing partial record excluded).
func decodablePrefix(data []byte) (recs, n int) {
	off := 0
	for off < len(data) {
		if data[off] == 0 {
			z := off
			for z < len(data) && data[z] == 0 {
				z++
			}
			off = z
			continue
		}
		_, sz, err := event.Decode(data[off:])
		if err != nil {
			return recs, off
		}
		recs++
		off += sz
	}
	return recs, off
}

// resync scans forward from off for the next offset that could start a
// chunk or footer, accounting skipped bytes.
func resync(data []byte, off int, rep *SalvageReport) int {
	start := off
	for off < len(data) {
		if data[off] == ChunkMagic || isFooterAt(data, off) {
			break
		}
		off++
	}
	if off > start {
		rep.BytesSkipped += off - start
	}
	if off < len(data) && start > 0 {
		rep.Resyncs++
	}
	return off
}
