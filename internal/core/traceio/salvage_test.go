package traceio

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/celltrace/pdt/internal/core/event"
)

// writeMultiChunk builds a 4-chunk trace (SPE 0, SPE 1, PPE, SPE 0 again)
// and returns the bytes plus the chunk payloads in file order.
func writeMultiChunk(t *testing.T) ([]byte, [][]byte) {
	t.Helper()
	var out bytes.Buffer
	w, err := NewWriter(&out, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(sampleMeta()); err != nil {
		t.Fatal(err)
	}
	mk := func(core uint8, n int) []byte {
		var recs []event.Record
		for i := 0; i < n; i++ {
			recs = append(recs, event.Record{
				ID: event.SPEMFCGet, Core: core, Flags: event.FlagDecrTime,
				Time: uint64(10 * (i + 1)), Args: []uint64{0, 64, 128, uint64(i % 16)},
			})
		}
		return encodeRecords(t, recs...)
	}
	ppe := encodeRecords(t,
		event.Record{ID: event.PPESPEStart, Core: event.CorePPE, Time: 990, Args: []uint64{0, 1}},
		event.Record{ID: event.PPESPEStart, Core: event.CorePPE, Time: 1000, Args: []uint64{1, 1}},
	)
	payloads := [][]byte{mk(0, 12), mk(1, 9), ppe, mk(0, 7)}
	chunks := []Chunk{
		{Core: 0, AnchorIdx: 0, Data: payloads[0]},
		{Core: 1, AnchorIdx: 1, Data: payloads[1]},
		{Core: event.CorePPE, AnchorIdx: NoAnchor, Data: payloads[2]},
		{Core: 0, AnchorIdx: 0, Data: payloads[3]},
	}
	for _, c := range chunks {
		if err := w.WriteChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), payloads
}

// chunkOffsets returns the file offset of each chunk header.
func chunkOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	f, off, err := parseHeaderMeta(data, Limits{})
	if err != nil || f.Truncated {
		t.Fatalf("parseHeaderMeta: %v (trunc=%v)", err, f.Truncated)
	}
	chdr := chunkHeaderLen(f.Header.Version)
	var offs []int
	for off < len(data) && data[off] == ChunkMagic {
		offs = append(offs, off)
		clen := int(le32(data[off+4 : off+8]))
		off += chdr + clen
	}
	return offs
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// checkAccounting asserts the report's disjoint byte invariant.
func checkAccounting(t *testing.T, rep *SalvageReport) {
	t.Helper()
	sum := rep.BytesStructural + rep.BytesRecovered + rep.BytesDamaged + rep.BytesSkipped
	if sum != rep.BytesTotal {
		t.Fatalf("byte accounting: structural %d + recovered %d + damaged %d + skipped %d = %d, want total %d",
			rep.BytesStructural, rep.BytesRecovered, rep.BytesDamaged, rep.BytesSkipped, sum, rep.BytesTotal)
	}
}

func TestSalvageCleanFile(t *testing.T) {
	data, payloads := writeMultiChunk(t)
	f, rep, err := Salvage(data)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean file not reported clean: %+v notes=%v", rep, rep.Notes)
	}
	if f.Truncated {
		t.Fatal("clean file reported truncated")
	}
	if len(f.Chunks) != len(payloads) {
		t.Fatalf("chunks = %d, want %d", len(f.Chunks), len(payloads))
	}
	for i, c := range f.Chunks {
		if !bytes.Equal(c.Data, payloads[i]) {
			t.Fatalf("chunk %d data differs", i)
		}
	}
	if rep.ChunksRecovered != 4 || rep.ChunksDamaged != 0 || rep.Resyncs != 0 {
		t.Fatalf("report = %+v", rep)
	}
	checkAccounting(t, rep)
}

// TestSalvageSingleFlip flips every byte position in turn: salvage must
// never panic, must keep the accounting exact, and must recover verbatim
// every chunk whose bytes all precede the flip.
func TestSalvageSingleFlip(t *testing.T) {
	data, payloads := writeMultiChunk(t)
	offs := chunkOffsets(t, data)
	chdr := chunkHeaderLen(Version)
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x5A
		f, rep, err := Salvage(mut)
		if rep == nil {
			t.Fatalf("pos %d: nil report", pos)
		}
		checkAccounting(t, rep)
		if err != nil {
			continue // nothing recoverable is acceptable only with err
		}
		// Every chunk fully before the flip must be present verbatim.
		for i, o := range offs {
			end := o + chdr + len(payloads[i])
			if end > pos {
				break
			}
			found := false
			for _, c := range f.Chunks {
				if bytes.Equal(c.Data, payloads[i]) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("flip at %d: chunk %d (bytes %d..%d) not recovered", pos, i, o, end)
			}
		}
	}
}

// TestSalvageInsertDelete shifts the byte stream by inserting or deleting
// one byte at a sample of positions; chunks before the edit must survive
// and intact chunks after it must be re-found by resync.
func TestSalvageInsertDelete(t *testing.T) {
	data, payloads := writeMultiChunk(t)
	offs := chunkOffsets(t, data)
	chdr := chunkHeaderLen(Version)
	// Edit inside chunk 1's payload: chunk 0 precedes, chunks 2 and 3 are
	// intact but shifted.
	pos := offs[1] + chdr + 5
	for name, mut := range map[string][]byte{
		"insert": append(append(append([]byte(nil), data[:pos]...), 0xA7), data[pos:]...),
		"delete": append(append([]byte(nil), data[:pos]...), data[pos+1:]...),
	} {
		f, rep, err := Salvage(mut)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkAccounting(t, rep)
		for _, want := range [][]byte{payloads[0], payloads[2], payloads[3]} {
			found := false
			for _, c := range f.Chunks {
				if bytes.Equal(c.Data, want) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s at %d: intact chunk not recovered (chunks=%d, report=%+v)",
					name, pos, len(f.Chunks), rep)
			}
		}
		if rep.Resyncs == 0 {
			t.Fatalf("%s: expected at least one resync, report=%+v", name, rep)
		}
	}
}

// TestSalvageTruncation cuts the file at every offset: chunks fully inside
// the prefix must be recovered and the accounting must stay exact.
func TestSalvageTruncation(t *testing.T) {
	data, payloads := writeMultiChunk(t)
	offs := chunkOffsets(t, data)
	chdr := chunkHeaderLen(Version)
	for cut := 0; cut <= len(data); cut++ {
		f, rep, err := Salvage(data[:cut])
		checkAccounting(t, rep)
		if err != nil {
			continue
		}
		if cut < len(data) && !f.Truncated {
			t.Fatalf("cut %d: truncated file not flagged", cut)
		}
		for i, o := range offs {
			if o+chdr+len(payloads[i]) > cut {
				break
			}
			found := false
			for _, c := range f.Chunks {
				if bytes.Equal(c.Data, payloads[i]) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("cut %d: complete chunk %d not recovered", cut, i)
			}
		}
	}
}

// TestSalvageMetaDamage corrupts the metadata blob so it no longer parses:
// SPE chunks lose their anchors and are dropped, PPE chunks survive.
func TestSalvageMetaDamage(t *testing.T) {
	data, payloads := writeMultiChunk(t)
	mut := append([]byte(nil), data...)
	// The metadata XML starts right after the header and its length field.
	copy(mut[headerLen+4:], "<<<garbage>>>")
	f, rep, err := Salvage(mut)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.MetaOK {
		t.Fatal("damaged metadata reported OK")
	}
	if rep.ChunksDropped == 0 {
		t.Fatalf("SPE chunks not dropped without anchors: %+v", rep)
	}
	foundPPE := false
	for _, c := range f.Chunks {
		if c.Core < event.CorePPEBase {
			t.Fatalf("SPE chunk kept without metadata: core %d", c.Core)
		}
		if bytes.Equal(c.Data, payloads[2]) {
			foundPPE = true
		}
	}
	if !foundPPE {
		t.Fatal("PPE chunk not recovered after metadata damage")
	}
}

// TestSalvageFooterCRCMismatch flips a bit in the stored footer CRC: all
// chunks recover, the footer is reported bad.
func TestSalvageFooterCRCMismatch(t *testing.T) {
	data, _ := writeMultiChunk(t)
	mut := append([]byte(nil), data...)
	mut[len(mut)-1] ^= 1
	f, rep, err := Salvage(mut)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.FooterOK {
		t.Fatal("bad footer CRC reported OK")
	}
	if rep.ChunksRecovered != 4 || rep.ChunksDamaged != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if !f.Truncated {
		t.Fatal("unverifiable file should be flagged truncated")
	}
}

// TestSalvageGarbage feeds random bytes: no panic, and either an
// unsalvageable error or an exact accounting of what it claims to have
// found.
func TestSalvageGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, rng.Intn(600))
		rng.Read(data)
		_, rep, _ := Salvage(data)
		checkAccounting(t, rep)
	}
}

// TestSalvageMissingFooter drops the footer entirely (the crash-write
// shape): everything recovers, file flagged truncated.
func TestSalvageMissingFooter(t *testing.T) {
	data, payloads := writeMultiChunk(t)
	f, rep, err := Salvage(data[:len(data)-8])
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.FooterOK {
		t.Fatal("missing footer reported OK")
	}
	if !f.Truncated {
		t.Fatal("footerless file not flagged truncated")
	}
	if len(f.Chunks) != len(payloads) || rep.ChunksRecovered != 4 {
		t.Fatalf("chunks=%d report=%+v", len(f.Chunks), rep)
	}
}

// TestSalvageParityWithParse checks Salvage and Parse agree on a clean
// file, chunk for chunk.
func TestSalvageParityWithParse(t *testing.T) {
	data := writeSample(t)
	pf, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	sf, _, err := Salvage(data)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Header != pf.Header || len(sf.Chunks) != len(pf.Chunks) {
		t.Fatalf("salvage diverges: %+v vs %+v", sf.Header, pf.Header)
	}
	for i := range pf.Chunks {
		if !bytes.Equal(sf.Chunks[i].Data, pf.Chunks[i].Data) ||
			sf.Chunks[i].Core != pf.Chunks[i].Core ||
			sf.Chunks[i].AnchorIdx != pf.Chunks[i].AnchorIdx {
			t.Fatalf("chunk %d differs", i)
		}
	}
}
