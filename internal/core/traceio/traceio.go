// Package traceio implements the PDT trace file format: a fixed header, an
// XML metadata blob (session parameters, clock-correlation anchors, drop
// accounting), a sequence of record chunks (one per core buffer flush
// region), and a CRC32 footer. Readers tolerate a truncated tail — a trace
// from a crashed run decodes up to the damage and is flagged Truncated —
// and Salvage recovers the intact chunks of an arbitrarily damaged file.
package traceio

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/celltrace/pdt/internal/core/event"
)

// File format constants.
const (
	Magic       = "PDT1"
	FooterMagic = "PDTE"
	ChunkMagic  = 0xC5
	// Version 2 added a per-chunk CRC32 to the chunk header so damaged
	// files can be salvaged chunk by chunk; version 1 files (no chunk
	// CRC) are still read.
	Version = 2
)

// NoAnchor marks chunks (PPE buffers) whose timestamps are absolute
// timebase ticks and need no decrementer correlation.
const NoAnchor = 0xFFFF

// Header is the fixed-size file prologue.
type Header struct {
	Version     uint16
	NumSPEs     uint8
	TimebaseDiv uint64 // processor cycles per timebase tick
	ClockHz     uint64 // nominal processor frequency (reporting only)
}

// Anchor is one clock-correlation record: at PPE timebase tick Timebase,
// SPE program Program started on SPE with the decrementer loaded to
// Loaded. SPE record times are elapsed decrementer ticks since this point.
type Anchor struct {
	SPE      int    `xml:"spe,attr"`
	Timebase uint64 `xml:"timebase,attr"`
	Loaded   uint32 `xml:"loaded,attr"`
	Program  string `xml:"program,attr"`
}

// Drop accounts records lost on one SPE when its main-memory trace region
// filled.
type Drop struct {
	SPE   int    `xml:"spe,attr"`
	Count uint64 `xml:"count,attr"`
}

// Param is one workload or session parameter recorded for reproducibility.
type Param struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// Meta is the XML metadata blob.
type Meta struct {
	XMLName  xml.Name `xml:"pdtmeta"`
	Workload string   `xml:"workload,attr"`
	Groups   string   `xml:"groups,attr"` // enabled group names, for reporting
	// SPEEventCost/PPEEventCost record the configured per-record
	// instrumentation cost in cycles, letting the analyzer compensate
	// measurements for tracing overhead.
	SPEEventCost uint64   `xml:"speEventCost,attr"`
	PPEEventCost uint64   `xml:"ppeEventCost,attr"`
	Anchors      []Anchor `xml:"anchor"`
	Drops        []Drop   `xml:"drop"`
	Params       []Param  `xml:"param"`
}

// Chunk is one contiguous run of encoded records from a single core.
type Chunk struct {
	Core      uint8  // SPE index or event.CorePPE
	AnchorIdx uint16 // index into Meta.Anchors, or NoAnchor
	Data      []byte // encoded records
	// CRC is the per-chunk checksum stored in the chunk header (version 2
	// files; zero on version 1 reads). The writer computes it; callers
	// building chunks by hand can leave it zero.
	CRC uint32
}

// ChunkCRC computes the per-chunk checksum stored in version 2 chunk
// headers: CRC32 (IEEE) over the header fields after the magic (core,
// anchor index, data length) and the chunk data, so a corrupted header
// byte is as detectable as corrupted data.
func ChunkCRC(c Chunk) uint32 {
	var h [7]byte
	h[0] = c.Core
	binary.LittleEndian.PutUint16(h[1:3], c.AnchorIdx)
	binary.LittleEndian.PutUint32(h[3:7], uint32(len(c.Data)))
	return crc32.Update(crc32.ChecksumIEEE(h[:]), crc32.IEEETable, c.Data)
}

// Writer emits a trace file.
type Writer struct {
	w      io.Writer
	crc    uint32
	closed bool
	err    error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	tw := &Writer{w: w}
	var buf bytes.Buffer
	buf.WriteString(Magic)
	b := buf.Bytes()
	b = binary.LittleEndian.AppendUint16(b, h.Version)
	b = append(b, h.NumSPEs)
	b = binary.LittleEndian.AppendUint64(b, h.TimebaseDiv)
	b = binary.LittleEndian.AppendUint64(b, h.ClockHz)
	if err := tw.write(b); err != nil {
		return nil, err
	}
	return tw, nil
}

func (w *Writer) write(b []byte) error {
	if w.err != nil {
		return w.err
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, b)
	_, w.err = w.w.Write(b)
	return w.err
}

// WriteMeta writes the metadata blob; call exactly once, before chunks.
func (w *Writer) WriteMeta(m *Meta) error {
	data, err := xml.Marshal(m)
	if err != nil {
		return fmt.Errorf("traceio: marshal metadata: %w", err)
	}
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(data)))
	b = append(b, data...)
	return w.write(b)
}

// WriteChunk writes one record chunk, computing its header CRC from Data.
func (w *Writer) WriteChunk(c Chunk) error {
	b := []byte{ChunkMagic, c.Core}
	b = binary.LittleEndian.AppendUint16(b, c.AnchorIdx)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Data)))
	b = binary.LittleEndian.AppendUint32(b, ChunkCRC(c))
	if err := w.write(b); err != nil {
		return err
	}
	return w.write(c.Data)
}

// Close writes the footer (magic + CRC32 of everything before it).
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	crc := w.crc // CRC covers header..chunks, not the footer itself
	b := append([]byte(FooterMagic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(b[4:], crc)
	return w.write(b)
}

// File is a fully parsed trace.
type File struct {
	Header Header
	Meta   Meta
	Chunks []Chunk
	// Truncated marks a file whose tail was cut off (crashed run); the
	// decoded prefix is still valid.
	Truncated bool
}

// ErrBadMagic marks a file that is not a PDT trace at all.
var ErrBadMagic = errors.New("traceio: bad magic (not a PDT trace)")

// ErrCRC marks a structurally complete file whose checksum does not match.
// Parse returns it alongside the fully parsed *File: the structure is
// intact, only the checksum disagrees, so callers may choose to keep the
// data (Salvage and the doctor command do; strict callers treat any
// non-nil error as fatal and discard the file).
var ErrCRC = errors.New("traceio: CRC mismatch")

// ErrCorrupt marks structural damage (bad chunk framing, unreadable
// metadata). Errors wrapping it — and ErrCRC / ErrBadMagic — identify
// input that Salvage may still partially recover; IsCorrupt tests for all
// three.
var ErrCorrupt = errors.New("traceio: corrupt trace")

// IsCorrupt reports whether err indicates a damaged trace file that is a
// candidate for Salvage (as opposed to, say, an I/O error).
func IsCorrupt(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrCRC) || errors.Is(err, ErrBadMagic)
}

// headerLen is the fixed file prologue size; chunkHeaderLen depends on the
// format version (version 2 added the 4-byte chunk CRC).
const headerLen = 4 + 2 + 1 + 8 + 8

func chunkHeaderLen(version uint16) int {
	if version >= 2 {
		return 12
	}
	return 8
}

// Read parses a whole trace file.
func Read(r io.Reader) (*File, error) {
	return ReadContext(context.Background(), r, Limits{})
}

// ReadContext parses a whole trace file, refusing inputs larger than
// lim.MaxFileBytes before buffering more than that many bytes.
func ReadContext(ctx context.Context, r io.Reader, lim Limits) (*File, error) {
	if lim.MaxFileBytes > 0 {
		r = io.LimitReader(r, lim.MaxFileBytes+1)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if lim.MaxFileBytes > 0 && int64(len(data)) > lim.MaxFileBytes {
		return nil, limitErr("file size over", int64(len(data)), lim.MaxFileBytes)
	}
	return ParseContext(ctx, data, lim)
}

// Parse parses a trace from memory with no deadline and no resource
// limits (the historical trusted-operator contract). On a footer CRC
// mismatch it returns the structurally complete *File alongside ErrCRC,
// so callers that can tolerate unverified data need not discard it; every
// other error returns a nil file.
func Parse(data []byte) (*File, error) {
	return ParseContext(context.Background(), data, Limits{})
}

// ParseContext parses a trace from memory, honoring cancellation and the
// admission-control limits: a metadata blob or chunk whose header
// declares a length over the corresponding limit is rejected with
// ErrLimitExceeded before any length-proportional work happens. Declared
// lengths are never trusted for allocation — chunk data is sliced from
// the input, so the per-chunk footprint is capped by
// min(declared, remaining input bytes) even with no limits set.
func ParseContext(ctx context.Context, data []byte, lim Limits) (*File, error) {
	if lim.MaxFileBytes > 0 && int64(len(data)) > lim.MaxFileBytes {
		return nil, limitErr("file size", int64(len(data)), lim.MaxFileBytes)
	}
	f, off, err := parseHeaderMeta(data, lim)
	if err != nil || f.Truncated {
		return orNil(f, err)
	}
	chdr := chunkHeaderLen(f.Header.Version)

	// Chunks until footer or truncation.
	for iter := 0; off < len(data); iter++ {
		if err := checkEvery(ctx, iter); err != nil {
			return nil, err
		}
		if data[off] == FooterMagic[0] {
			if len(data)-off < 8 || string(data[off:off+4]) != FooterMagic {
				f.Truncated = true
				return f, nil
			}
			want := binary.LittleEndian.Uint32(data[off+4 : off+8])
			got := crc32.ChecksumIEEE(data[:off])
			if got != want {
				return f, fmt.Errorf("%w: got %#x want %#x", ErrCRC, got, want)
			}
			return f, nil
		}
		if data[off] != ChunkMagic {
			return nil, fmt.Errorf("%w: bad chunk magic %#x at offset %d", ErrCorrupt, data[off], off)
		}
		if len(data)-off < chdr {
			f.Truncated = true
			return f, nil
		}
		c := Chunk{
			Core:      data[off+1],
			AnchorIdx: binary.LittleEndian.Uint16(data[off+2 : off+4]),
		}
		clen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		if lim.MaxChunkBytes > 0 && clen > lim.MaxChunkBytes {
			return nil, limitErr(fmt.Sprintf("chunk at offset %d declares", off), int64(clen), int64(lim.MaxChunkBytes))
		}
		if chdr == 12 {
			c.CRC = binary.LittleEndian.Uint32(data[off+8 : off+12])
		}
		off += chdr
		if off+clen > len(data) {
			f.Truncated = true
			return f, nil
		}
		c.Data = data[off : off+clen]
		f.Chunks = append(f.Chunks, c)
		off += clen
	}
	f.Truncated = true // ran out of bytes without seeing a footer
	return f, nil
}

// orNil drops the partial file for errors other than ErrCRC, preserving
// the strict contract that only checksum failures carry data out.
func orNil(f *File, err error) (*File, error) {
	if err != nil && !errors.Is(err, ErrCRC) {
		return nil, err
	}
	return f, err
}

// parseHeaderMeta parses the fixed header and metadata blob, returning the
// offset of the first chunk. A truncated prefix sets f.Truncated with no
// error, mirroring Parse's tolerance for crashed writes. A metadata blob
// declaring more than lim.MaxMetaBytes is rejected before the XML decoder
// sees it.
func parseHeaderMeta(data []byte, lim Limits) (*File, int, error) {
	if len(data) < headerLen || string(data[:4]) != Magic {
		return nil, 0, ErrBadMagic
	}
	f := &File{}
	f.Header.Version = binary.LittleEndian.Uint16(data[4:6])
	if f.Header.Version == 0 || f.Header.Version > Version {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, f.Header.Version)
	}
	f.Header.NumSPEs = data[6]
	f.Header.TimebaseDiv = binary.LittleEndian.Uint64(data[7:15])
	f.Header.ClockHz = binary.LittleEndian.Uint64(data[15:23])
	off := headerLen

	if off+4 > len(data) {
		f.Truncated = true
		return f, off, nil
	}
	mlen := int(binary.LittleEndian.Uint32(data[off : off+4]))
	if lim.MaxMetaBytes > 0 && mlen > lim.MaxMetaBytes {
		return nil, 0, limitErr("metadata length", int64(mlen), int64(lim.MaxMetaBytes))
	}
	off += 4
	if off+mlen > len(data) {
		f.Truncated = true
		return f, off, nil
	}
	if err := xml.Unmarshal(data[off:off+mlen], &f.Meta); err != nil {
		return nil, 0, fmt.Errorf("%w: metadata: %v", ErrCorrupt, err)
	}
	off += mlen
	return f, off, nil
}

// DecodeChunk decodes every record in one chunk with no deadline and no
// record cap. A truncated final record ends decoding cleanly with
// truncated=true; structural corruption returns an error alongside the
// records decoded so far.
func DecodeChunk(c Chunk) (recs []event.Record, truncated bool, err error) {
	return DecodeChunkContext(context.Background(), c, Limits{})
}

// DecodeChunkContext decodes one chunk under cancellation and a per-chunk
// record cap (lim.MaxRecords; 0 = unlimited). The preallocation is sized
// from the bytes actually present in the chunk — never from any
// header-declared length — so a hostile header cannot drive allocation
// beyond min(declared, remaining) bytes of real input.
func DecodeChunkContext(ctx context.Context, c Chunk, lim Limits) (recs []event.Record, truncated bool, err error) {
	data := c.Data
	// Pre-scan the framing for the exact record and argument-word counts
	// (an upper bound under corruption, see event.ScanChunk), so decoding
	// never regrows either slice: one record slice zeroed to its real
	// size instead of a len/MinRecordSize guess, and one shared argument
	// arena for the whole chunk so records do not allocate individually.
	// The arena never reallocating is a correctness requirement, not a
	// speed win — every decoded record's Args aliases it.
	est, words := event.ScanChunk(data)
	if lim.MaxRecords > 0 && est > lim.MaxRecords {
		est = lim.MaxRecords + 1 // room for the record that trips the cap
	}
	var arena []uint64
	if est > 0 {
		recs = make([]event.Record, 0, est)
		arena = make([]uint64, 0, words)
	}
	for len(data) > 0 {
		if err := checkEvery(ctx, len(recs)); err != nil {
			return recs, false, err
		}
		if data[0] == 0 {
			// DMA-alignment padding between buffer flushes: skip the
			// whole zero run at once.
			n := 1
			for n < len(data) && data[n] == 0 {
				n++
			}
			data = data[n:]
			continue
		}
		// Decode straight into the next slot of the pre-sized slice; the
		// append branch only runs if the pre-scan bound was ever wrong
		// (it cannot be — see event.ScanChunk — but growth is safer than
		// an out-of-range write).
		if len(recs) < cap(recs) {
			recs = recs[:len(recs)+1]
		} else {
			recs = append(recs, event.Record{})
		}
		n, nextArena, derr := event.DecodeNext(&recs[len(recs)-1], data, arena)
		arena = nextArena
		if derr != nil {
			recs = recs[:len(recs)-1]
			if errors.Is(derr, event.ErrShortRecord) {
				return recs, true, nil
			}
			return recs, false, fmt.Errorf("traceio: core %d: %w", c.Core, derr)
		}
		if lim.MaxRecords > 0 && len(recs) > lim.MaxRecords {
			return recs, false, limitErr(fmt.Sprintf("core %d record count", c.Core),
				int64(len(recs)), int64(lim.MaxRecords))
		}
		data = data[n:]
	}
	return recs, false, nil
}
