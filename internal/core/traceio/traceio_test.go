package traceio

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/celltrace/pdt/internal/core/event"
)

func sampleHeader() Header {
	return Header{Version: Version, NumSPEs: 8, TimebaseDiv: 40, ClockHz: 3_200_000_000}
}

func sampleMeta() *Meta {
	return &Meta{
		Workload: "matmul",
		Groups:   "mfc|mailbox",
		Anchors: []Anchor{
			{SPE: 0, Timebase: 1000, Loaded: 0xFFFFFFFF, Program: "mm"},
			{SPE: 1, Timebase: 1010, Loaded: 0xFFFFFFFF, Program: "mm"},
		},
		Drops:  []Drop{{SPE: 1, Count: 3}},
		Params: []Param{{Name: "n", Value: "512"}},
	}
}

func encodeRecords(t *testing.T, recs ...event.Record) []byte {
	t.Helper()
	var buf []byte
	for i := range recs {
		var err error
		buf, err = recs[i].AppendTo(buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func writeSample(t *testing.T) []byte {
	t.Helper()
	var out bytes.Buffer
	w, err := NewWriter(&out, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(sampleMeta()); err != nil {
		t.Fatal(err)
	}
	spe0 := encodeRecords(t,
		event.Record{ID: event.SPEProgramStart, Core: 0, Flags: event.FlagDecrTime, Time: 0, Args: []uint64{1}},
		event.Record{ID: event.SPEMFCGet, Core: 0, Flags: event.FlagDecrTime, Time: 5, Args: []uint64{0, 64, 128, 1}},
		event.Record{ID: event.SPEProgramEnd, Core: 0, Flags: event.FlagDecrTime, Time: 50, Args: []uint64{0}},
	)
	ppe := encodeRecords(t,
		event.Record{ID: event.PPESPEStart, Core: event.CorePPE, Time: 990, Args: []uint64{0, 1}},
	)
	if err := w.WriteChunk(Chunk{Core: 0, AnchorIdx: 0, Data: spe0}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(Chunk{Core: event.CorePPE, AnchorIdx: NoAnchor, Data: ppe}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestWriteReadRoundTrip(t *testing.T) {
	data := writeSample(t)
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Truncated {
		t.Fatal("complete file reported truncated")
	}
	if f.Header != sampleHeader() {
		t.Fatalf("header = %+v", f.Header)
	}
	if f.Meta.Workload != "matmul" || len(f.Meta.Anchors) != 2 || f.Meta.Anchors[1].SPE != 1 {
		t.Fatalf("meta = %+v", f.Meta)
	}
	if len(f.Meta.Drops) != 1 || f.Meta.Drops[0].Count != 3 {
		t.Fatalf("drops = %+v", f.Meta.Drops)
	}
	if len(f.Chunks) != 2 {
		t.Fatalf("chunks = %d", len(f.Chunks))
	}
	recs, trunc, err := DecodeChunk(f.Chunks[0])
	if err != nil || trunc {
		t.Fatalf("decode chunk0: %v trunc=%v", err, trunc)
	}
	if len(recs) != 3 || recs[1].ID != event.SPEMFCGet {
		t.Fatalf("chunk0 records: %+v", recs)
	}
	if f.Chunks[1].AnchorIdx != NoAnchor || f.Chunks[1].Core != event.CorePPE {
		t.Fatalf("ppe chunk meta wrong: %+v", f.Chunks[1])
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not a trace at all")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Parse(nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsBadVersion(t *testing.T) {
	data := writeSample(t)
	data[4] = 99
	if _, err := Parse(data); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestParseDetectsCRCCorruption(t *testing.T) {
	data := writeSample(t)
	// Flip a byte inside the first chunk's records.
	data[len(data)-20] ^= 0xFF
	_, err := Parse(data)
	if err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestParseToleratesTruncation(t *testing.T) {
	data := writeSample(t)
	for _, cut := range []int{len(data) - 4, len(data) - 9, len(data) - 30} {
		f, err := Parse(data[:cut])
		if err != nil {
			// Cuts can land mid-structure in ways that look corrupt at
			// the chunk layer; those are acceptable too, but a clean
			// truncation flag is preferred. Mid-record cuts must not
			// return ErrCRC.
			if errors.Is(err, ErrCRC) {
				t.Fatalf("cut %d: CRC error on truncated file", cut)
			}
			continue
		}
		if !f.Truncated {
			t.Fatalf("cut %d: truncated file not flagged", cut)
		}
	}
}

func TestParseTruncatedMidMeta(t *testing.T) {
	data := writeSample(t)
	f, err := Parse(data[:26]) // header + partial metadata length
	if err != nil {
		t.Fatal(err)
	}
	if !f.Truncated {
		t.Fatal("not flagged truncated")
	}
}

func TestDecodeChunkTruncatedRecord(t *testing.T) {
	full := encodeRecords(t,
		event.Record{ID: event.SPEProgramEnd, Core: 0, Time: 1, Args: []uint64{0}},
		event.Record{ID: event.SPEProgramEnd, Core: 0, Time: 2, Args: []uint64{0}},
	)
	recs, trunc, err := DecodeChunk(Chunk{Core: 0, Data: full[:len(full)-3]})
	if err != nil {
		t.Fatal(err)
	}
	if !trunc || len(recs) != 1 {
		t.Fatalf("trunc=%v recs=%d, want true,1", trunc, len(recs))
	}
}

func TestDecodeChunkCorruptRecord(t *testing.T) {
	full := encodeRecords(t, event.Record{ID: event.SPEProgramEnd, Core: 0, Time: 1, Args: []uint64{0}})
	full[1], full[2] = 0xFF, 0x7F // unknown event id
	_, _, err := DecodeChunk(Chunk{Core: 0, Data: full})
	if err == nil {
		t.Fatal("corrupt record decoded")
	}
}

func TestEmptyTrace(t *testing.T) {
	var out bytes.Buffer
	w, err := NewWriter(&out, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(&Meta{Workload: "empty"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f.Truncated || len(f.Chunks) != 0 {
		t.Fatalf("empty trace parse wrong: trunc=%v chunks=%d", f.Truncated, len(f.Chunks))
	}
}

func TestCloseIdempotent(t *testing.T) {
	var out bytes.Buffer
	w, err := NewWriter(&out, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(&Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := out.Len()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != n {
		t.Fatal("second Close wrote more bytes")
	}
}

// Property: any sequence of valid records written through the file layer
// round-trips byte-exact.
func TestFileRoundTripProperty(t *testing.T) {
	ids := event.All()
	f := func(seeds []uint64) bool {
		var recs []event.Record
		for i, s := range seeds {
			info := ids[int(s%uint64(len(ids)))]
			r := event.Record{ID: info.ID, Core: uint8(i % 8), Time: s}
			x := s
			for range info.Args {
				x = x*2862933555777941757 + 3037000493
				r.Args = append(r.Args, x)
			}
			recs = append(recs, r)
		}
		var data []byte
		for i := range recs {
			var err error
			data, err = recs[i].AppendTo(data)
			if err != nil {
				return false
			}
		}
		var out bytes.Buffer
		w, err := NewWriter(&out, sampleHeader())
		if err != nil {
			return false
		}
		if err := w.WriteMeta(&Meta{Workload: "prop"}); err != nil {
			return false
		}
		if err := w.WriteChunk(Chunk{Core: 0, AnchorIdx: 0, Data: data}); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		file, err := Parse(out.Bytes())
		if err != nil || file.Truncated {
			return false
		}
		if len(recs) == 0 {
			return len(file.Chunks) == 1 && len(file.Chunks[0].Data) == 0
		}
		got, trunc, err := DecodeChunk(file.Chunks[0])
		if err != nil || trunc || len(got) != len(recs) {
			return false
		}
		for i := range got {
			if got[i].ID != recs[i].ID || got[i].Time != recs[i].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
