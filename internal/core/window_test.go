package core

import (
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
)

func TestTraceWindowRestrictsRecording(t *testing.T) {
	prog := func(spu cell.SPU) uint32 {
		for i := 0; i < 100; i++ {
			spu.Compute(1000)
			User(spu, uint32(i), 0, 0)
		}
		return 0
	}
	full, _ := traceRun(t, DefaultTraceConfig(), nil, func(h cell.Host) {
		h.Wait(h.Run(0, "w", prog))
	})
	cfg := DefaultTraceConfig()
	cfg.WindowStart = 30000
	cfg.WindowEnd = 60000
	windowed, s := traceRun(t, cfg, nil, func(h cell.Host) {
		h.Wait(h.Run(0, "w", prog))
	})
	fullCount := len(allRecords(t, full))
	winCount := len(allRecords(t, windowed))
	if winCount >= fullCount/2 {
		t.Fatalf("windowed trace has %d records vs full %d; window ineffective", winCount, fullCount)
	}
	if s.Stats().SPERecords == 0 {
		t.Fatal("window recorded nothing")
	}
	// Only mid-run user events survive: ids near the start/end must be
	// absent.
	ids := map[uint64]bool{}
	for _, r := range allRecords(t, windowed) {
		if r.ID == event.SPEUserEvent {
			ids[r.Args[0]] = true
		}
	}
	if ids[0] || ids[99] {
		t.Fatalf("boundary events recorded despite window: %v", ids)
	}
	if len(ids) == 0 {
		t.Fatal("no user events inside the window")
	}
}

func TestTraceWindowOpenEnded(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.WindowStart = 50000 // no end
	_, s := traceRun(t, cfg, nil, func(h cell.Host) {
		h.Wait(h.Run(0, "w", func(spu cell.SPU) uint32 {
			User(spu, 1, 0, 0) // before the window
			spu.Compute(100000)
			User(spu, 2, 0, 0) // inside
			return 0
		}))
	})
	if s.Stats().SPERecords == 0 {
		t.Fatal("open-ended window recorded nothing")
	}
}
