package core

import (
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
)

func TestWrapMainKeepsRecentRecords(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.SPEBufferSize = 512
	cfg.DoubleBuffered = false
	cfg.MainBufferPerSPE = 2048 // tiny: forces wraps
	cfg.WrapMain = true
	f, s := traceRun(t, cfg, nil, func(h cell.Host) {
		h.Wait(h.Run(0, "wrap", func(spu cell.SPU) uint32 {
			for i := 0; i < 400; i++ {
				TracedUser(spu, uint32(i))
			}
			return 0
		}))
	})
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatal("wrap mode dropped nothing despite tiny region")
	}
	// The captured user events must be the LAST ones emitted.
	var ids []uint64
	for _, rec := range allRecords(t, f) {
		if rec.ID == event.SPEUserEvent {
			ids = append(ids, rec.Args[0])
		}
	}
	if len(ids) == 0 {
		t.Fatal("no user events survived the wrap")
	}
	if ids[len(ids)-1] != 399 {
		t.Fatalf("last surviving event = %d, want 399 (recent window lost)", ids[len(ids)-1])
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("surviving events not contiguous: %d then %d", ids[i-1], ids[i])
		}
	}
}

func TestNoWrapKeepsEarliestRecords(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.SPEBufferSize = 512
	cfg.DoubleBuffered = false
	cfg.MainBufferPerSPE = 2048
	cfg.WrapMain = false
	f, s := traceRun(t, cfg, nil, func(h cell.Host) {
		h.Wait(h.Run(0, "nowrap", func(spu cell.SPU) uint32 {
			for i := 0; i < 400; i++ {
				TracedUser(spu, uint32(i))
			}
			return 0
		}))
	})
	if s.Stats().Dropped == 0 {
		t.Fatal("no drops despite tiny region")
	}
	var first uint64 = 1 << 62
	for _, rec := range allRecords(t, f) {
		if rec.ID == event.SPEUserEvent && rec.Args[0] < first {
			first = rec.Args[0]
		}
	}
	if first != 0 {
		t.Fatalf("earliest surviving event = %d, want 0 (head window lost)", first)
	}
}

// TracedUser emits one user event (helper keeping the wrap tests terse).
func TracedUser(spu cell.SPU, i uint32) {
	User(spu, i, uint64(i), 0)
	spu.Compute(100)
}
