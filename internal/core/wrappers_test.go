package core

import (
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
)

// TestTracedWrappersFullSurface drives every instrumented API entry point
// once, on both sides, and checks that exactly the expected event types
// show up in the trace and that pass-through methods behave like the raw
// ones.
func TestTracedWrappersFullSurface(t *testing.T) {
	cfg := DefaultTraceConfig()
	f, _ := traceRun(t, cfg, nil, func(h cell.Host) {
		th, ok := h.(*TracedHost)
		if !ok {
			t.Fatal("host not wrapped")
		}
		if th.Unwrap() == nil || th.Machine() == nil || th.Mem() == nil {
			t.Error("host accessors broken")
		}
		if th.NumSPEs() != 8 {
			t.Errorf("NumSPEs = %d", th.NumSPEs())
		}
		_ = th.Timebase()
		_ = th.Now()
		th.Compute(10)

		src := h.Alloc(1024, 128)
		atomicEA := h.Alloc(8, 8)

		spawned := false
		h.Spawn("ppe:extra", func(h2 cell.Host) {
			h2.Compute(5)
			spawned = true
		})

		hd := h.Run(1, "surface", func(spu cell.SPU) uint32 {
			ts, ok := spu.(*TracedSPU)
			if !ok {
				return 90
			}
			if ts.Unwrap() == nil || ts.Index() != 1 || len(ts.LS()) == 0 {
				return 91
			}
			_ = ts.Now()
			_ = ts.ReadDecr()

			spu.Get(0, src, 256, 0)
			spu.Put(0, src, 256, 1)
			spu.GetList(1024, []cell.ListElem{{EA: src, Size: 64}, {EA: src + 128, Size: 64}}, 2)
			spu.PutList(1024, []cell.ListElem{{EA: src + 256, Size: 64}}, 3)
			if done := spu.WaitTagAny(0b1111); done == 0 {
				return 92
			}
			spu.WaitTagAll(0b1111)
			if spu.TagStatus(0b1111) != 0b1111 {
				return 93
			}

			_ = spu.InMboxCount()
			// The host's 77 may or may not have arrived yet; consume it
			// through whichever path, exercising both.
			if v, ok := spu.TryReadInMbox(); ok {
				if v != 77 {
					return 94
				}
			} else if spu.ReadInMbox() != 77 {
				return 96
			}
			// Second value always consumed through the blocking path so
			// its enter/exit events are recorded.
			if spu.ReadInMbox() != 88 {
				return 89
			}
			if !spu.TryWriteOutMbox(1) {
				return 97
			}
			spu.WriteOutMbox(2) // blocks until host drains
			spu.WriteOutIntrMbox(3)

			if spu.ReadSignal1() == 0 {
				return 98
			}
			if spu.ReadSignal2() == 0 {
				return 99
			}
			spu.Sndsig(2, 1, 0xF0, 4)
			spu.WaitTagAll(1 << 4)

			if !spu.AtomicCAS(atomicEA, 0, 5) {
				return 100
			}
			if spu.AtomicAdd(atomicEA, 2) != 7 {
				return 101
			}
			spu.Compute(100)
			User(spu, 1, 2, 3)
			UserLog(spu, "done")
			return 0
		})

		// Feed the SPE everything it blocks on.
		if !h.TryWriteInMbox(1, 77) {
			t.Error("TryWriteInMbox failed")
		}
		h.WriteInMbox(1, 88)
		if v := h.ReadOutMbox(1); v != 1 {
			t.Errorf("out mbox = %d", v)
		}
		if v, ok := h.TryReadOutMbox(1); !ok || v != 2 {
			// The SPE may not have written yet; fall back to blocking.
			if !ok {
				if v := h.ReadOutMbox(1); v != 2 {
					t.Errorf("second out mbox = %d", v)
				}
			} else {
				t.Errorf("TryReadOutMbox = %d", v)
			}
		}
		if v := h.ReadOutIntrMbox(1); v != 3 {
			t.Errorf("intr mbox = %d", v)
		}
		h.WriteSignal1(1, 0x10)
		h.WriteSignal2(1, 0x20)

		// Proxy DMA against an idle SPE.
		h.DMAGet(0, 0, src, 128, 7)
		h.DMAPut(0, 0, src, 128, 7)
		h.DMAWaitTagAll(0, 1<<7)

		if !h.AtomicCAS(atomicEA+0, 7, 9) {
			// SPE already advanced it; either way exercise both ops.
			h.AtomicAdd(atomicEA, 0)
		}
		HostUser(h, 5, 6, 7)
		HostUserLog(h, "host done")

		if code := h.Wait(hd); code != 0 {
			t.Errorf("SPE surface exit = %d", code)
		}
		if !spawned {
			t.Error("spawned PPE thread did not run")
		}
	})

	recs := allRecords(t, f)
	got := countByID(recs)
	for _, id := range []event.ID{
		event.SPEMFCGet, event.SPEMFCPut, event.SPEMFCGetList, event.SPEMFCPutList,
		event.SPEWaitTagEnter, event.SPEWaitTagExit,
		event.SPEReadInMboxEnter, event.SPEReadInMboxExit,
		event.SPEWriteOutMboxEnter, event.SPEWriteOutMboxExit,
		event.SPEWriteIntrMboxEnter, event.SPEWriteIntrMboxExit,
		event.SPEReadSignalEnter, event.SPEReadSignalExit,
		event.SPESndsig, event.SPEAtomicEnter, event.SPEAtomicExit,
		event.SPEUserEvent, event.SPEUserLog,
		event.PPESPEStart, event.PPEWaitEnter, event.PPEWaitExit,
		event.PPEReadOutMboxEnter, event.PPEReadOutMboxExit,
		event.PPEReadIntrMboxEnter, event.PPEReadIntrMboxExit,
		event.PPEWriteSignal, event.PPEDMAGet, event.PPEDMAPut,
		event.PPEWaitTagEnter, event.PPEWaitTagExit,
		event.PPEAtomicEnter, event.PPEAtomicExit,
		event.PPEUserEvent, event.PPEUserLog,
	} {
		if got[id] == 0 {
			t.Errorf("event %v never recorded", id)
		}
	}
}

func TestSessionAccessors(t *testing.T) {
	mc := cell.DefaultConfig()
	mc.MemSize = 8 * cell.MiB
	m := cell.NewMachine(mc)
	cfg := DefaultTraceConfig()
	cfg.Workload = "acc"
	s := NewSession(m, cfg)
	if s.Config().Workload != "acc" {
		t.Fatal("Config() wrong")
	}
}

func TestWriteFile(t *testing.T) {
	mc := cell.DefaultConfig()
	mc.MemSize = 8 * cell.MiB
	m := cell.NewMachine(mc)
	s := NewSession(m, DefaultTraceConfig())
	s.Attach()
	m.RunMain(func(h cell.Host) {
		h.Wait(h.Run(0, "wf", func(spu cell.SPU) uint32 { return 0 }))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/t.pdt"
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/nonexistent-dir/t.pdt"); err == nil {
		t.Fatal("bad path accepted")
	}
}
