// Package faults implements deterministic, seed-driven fault injection
// for the simulated tracer stack: killing a run at an arbitrary cycle,
// stalling or failing trace-flush DMAs, and corrupting or truncating the
// serialized trace bytes. A Plan is parsed from a compact spec string
// (the pdt-run -faults flag) and consulted by the machine and the tracing
// runtime while the simulation runs; because the simulation kernel is
// cooperatively scheduled, consumption order — and therefore the whole
// faulty execution — is reproducible for a given spec.
//
// Spec grammar: comma-separated directives, fields separated by colons.
//
//	seed:N                       RNG seed for rand offsets (default 1)
//	kill:CYCLE                   stop the whole machine at CYCLE
//	stall:SPE:CYCLE:EXTRA[:N]    stall flush DMAs of SPE issued at or
//	                             after CYCLE by EXTRA cycles, N times
//	                             (default 1); SPE may be * for any
//	failflush:SPE:CYCLE[:N]      fail N flush attempts of SPE at or
//	                             after CYCLE (default 1); SPE may be *
//	corrupt:OFF[:XOR]            flip trace byte at OFF (or "rand") with
//	                             XOR mask (default 0xFF, or "rand")
//	truncate:BYTES               cut BYTES (or "rand") off the trace tail
//
// Example: -faults 'seed:7,kill:250000,stall:0:0:4000:2,corrupt:rand'
//
// A Plan carries consumption state and must not be shared between
// concurrent runs; parse one plan per run.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// AnySPE matches every SPE in a stall or failflush rule (spelled * in
// specs).
const AnySPE = -1

// StallRule delays flush DMAs of one SPE (or AnySPE) issued at or after
// cycle After by Extra cycles, Count times.
type StallRule struct {
	SPE   int
	After uint64
	Extra uint64
	Count int
	used  int
}

// FailRule makes flush attempts of one SPE (or AnySPE) at or after cycle
// After fail, Count times. Each retry of the same flush consumes one
// failure, so Count interacts directly with the runtime's retry bound.
type FailRule struct {
	SPE   int
	After uint64
	Count int
	used  int
}

// CorruptRule flips one byte of the serialized trace. RandomOff/RandomXOR
// draw the offset/mask from the plan's seeded RNG at MangleTrace time.
type CorruptRule struct {
	Offset    int
	XOR       byte
	RandomOff bool
	RandomXOR bool
}

// Plan is a parsed fault-injection plan. The zero value injects nothing.
type Plan struct {
	Seed     uint64
	KillAt   uint64
	HasKill  bool
	Stalls   []StallRule
	Fails    []FailRule
	Corrupts []CorruptRule
	// TruncateBytes cuts the trace tail; -1 draws a random cut from the
	// seeded RNG at MangleTrace time.
	TruncateBytes int

	rng *rand.Rand
}

// Parse builds a Plan from a spec string; see the package comment for the
// grammar. An empty spec yields an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{Seed: 1}
	for _, dir := range strings.Split(spec, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		fields := strings.Split(dir, ":")
		name, args := fields[0], fields[1:]
		var err error
		switch name {
		case "seed":
			err = p.parseSeed(args)
		case "kill":
			err = p.parseKill(args)
		case "stall":
			err = p.parseStall(args)
		case "failflush":
			err = p.parseFail(args)
		case "corrupt":
			err = p.parseCorrupt(args)
		case "truncate":
			err = p.parseTruncate(args)
		default:
			err = fmt.Errorf("unknown directive %q", name)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: %q: %w", dir, err)
		}
	}
	p.rng = rand.New(rand.NewSource(int64(p.Seed)))
	return p, nil
}

func argCount(args []string, min, max int) error {
	if len(args) < min || len(args) > max {
		return fmt.Errorf("want %d-%d arguments, got %d", min, max, len(args))
	}
	return nil
}

func parseU64(s, what string) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", what, s)
	}
	return v, nil
}

func parseSPE(s string) (int, error) {
	if s == "*" {
		return AnySPE, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad SPE %q (index or *)", s)
	}
	return v, nil
}

func (p *Plan) parseSeed(args []string) error {
	if err := argCount(args, 1, 1); err != nil {
		return err
	}
	v, err := parseU64(args[0], "seed")
	if err != nil {
		return err
	}
	p.Seed = v
	return nil
}

func (p *Plan) parseKill(args []string) error {
	if err := argCount(args, 1, 1); err != nil {
		return err
	}
	v, err := parseU64(args[0], "cycle")
	if err != nil {
		return err
	}
	p.KillAt, p.HasKill = v, true
	return nil
}

func (p *Plan) parseStall(args []string) error {
	if err := argCount(args, 3, 4); err != nil {
		return err
	}
	spe, err := parseSPE(args[0])
	if err != nil {
		return err
	}
	after, err := parseU64(args[1], "cycle")
	if err != nil {
		return err
	}
	extra, err := parseU64(args[2], "stall cycles")
	if err != nil {
		return err
	}
	r := StallRule{SPE: spe, After: after, Extra: extra, Count: 1}
	if len(args) == 4 {
		n, err := parseU64(args[3], "count")
		if err != nil {
			return err
		}
		r.Count = int(n)
	}
	p.Stalls = append(p.Stalls, r)
	return nil
}

func (p *Plan) parseFail(args []string) error {
	if err := argCount(args, 2, 3); err != nil {
		return err
	}
	spe, err := parseSPE(args[0])
	if err != nil {
		return err
	}
	after, err := parseU64(args[1], "cycle")
	if err != nil {
		return err
	}
	r := FailRule{SPE: spe, After: after, Count: 1}
	if len(args) == 3 {
		n, err := parseU64(args[2], "count")
		if err != nil {
			return err
		}
		r.Count = int(n)
	}
	p.Fails = append(p.Fails, r)
	return nil
}

func (p *Plan) parseCorrupt(args []string) error {
	if err := argCount(args, 1, 2); err != nil {
		return err
	}
	r := CorruptRule{XOR: 0xFF}
	if args[0] == "rand" {
		r.RandomOff = true
	} else {
		v, err := parseU64(args[0], "offset")
		if err != nil {
			return err
		}
		r.Offset = int(v)
	}
	if len(args) == 2 {
		if args[1] == "rand" {
			r.RandomXOR = true
		} else {
			v, err := strconv.ParseUint(args[1], 0, 8)
			if err != nil || v == 0 {
				return fmt.Errorf("bad xor mask %q (1-255 or rand)", args[1])
			}
			r.XOR = byte(v)
		}
	}
	p.Corrupts = append(p.Corrupts, r)
	return nil
}

func (p *Plan) parseTruncate(args []string) error {
	if err := argCount(args, 1, 1); err != nil {
		return err
	}
	if args[0] == "rand" {
		p.TruncateBytes = -1
		return nil
	}
	v, err := parseU64(args[0], "byte count")
	if err != nil {
		return err
	}
	p.TruncateBytes = int(v)
	return nil
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (!p.HasKill && len(p.Stalls) == 0 && len(p.Fails) == 0 &&
		len(p.Corrupts) == 0 && p.TruncateBytes == 0)
}

// Kill returns the machine-kill cycle, if any.
func (p *Plan) Kill() (cycle uint64, ok bool) {
	if p == nil {
		return 0, false
	}
	return p.KillAt, p.HasKill
}

// FlushStall returns the extra cycles a flush DMA of the given SPE issued
// at cycle now must stall, consuming matching rules. Zero means no stall.
func (p *Plan) FlushStall(spe int, now uint64) uint64 {
	if p == nil {
		return 0
	}
	var extra uint64
	for i := range p.Stalls {
		r := &p.Stalls[i]
		if r.used < r.Count && (r.SPE == AnySPE || r.SPE == spe) && now >= r.After {
			r.used++
			extra += r.Extra
		}
	}
	return extra
}

// FlushFail reports whether a flush attempt of the given SPE at cycle now
// fails, consuming one matching failure.
func (p *Plan) FlushFail(spe int, now uint64) bool {
	if p == nil {
		return false
	}
	for i := range p.Fails {
		r := &p.Fails[i]
		if r.used < r.Count && (r.SPE == AnySPE || r.SPE == spe) && now >= r.After {
			r.used++
			return true
		}
	}
	return false
}

// MangleTrace applies the corrupt/truncate directives to a copy of the
// serialized trace, returning the mangled bytes and a note per mutation
// applied (for matching against a doctor report).
func (p *Plan) MangleTrace(data []byte) ([]byte, []string) {
	if p == nil || (len(p.Corrupts) == 0 && p.TruncateBytes == 0) {
		return data, nil
	}
	out := append([]byte(nil), data...)
	var notes []string
	for _, r := range p.Corrupts {
		if len(out) == 0 {
			break
		}
		off, xor := r.Offset, r.XOR
		if r.RandomOff {
			off = p.rng.Intn(len(out))
		}
		if r.RandomXOR {
			xor = byte(1 + p.rng.Intn(255))
		}
		if off >= len(out) {
			off = len(out) - 1
		}
		out[off] ^= xor
		notes = append(notes, fmt.Sprintf("corrupted byte at offset %d (xor %#02x)", off, xor))
	}
	if p.TruncateBytes != 0 {
		cut := p.TruncateBytes
		if cut < 0 {
			cut = p.rng.Intn(len(out) + 1)
		}
		if cut > len(out) {
			cut = len(out)
		}
		out = out[:len(out)-cut]
		notes = append(notes, fmt.Sprintf("truncated %d bytes off the tail", cut))
	}
	return out, notes
}

// String renders the plan back to a canonical spec (consumption state is
// not represented).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 1 {
		parts = append(parts, fmt.Sprintf("seed:%d", p.Seed))
	}
	if p.HasKill {
		parts = append(parts, fmt.Sprintf("kill:%d", p.KillAt))
	}
	spe := func(s int) string {
		if s == AnySPE {
			return "*"
		}
		return strconv.Itoa(s)
	}
	for _, r := range p.Stalls {
		parts = append(parts, fmt.Sprintf("stall:%s:%d:%d:%d", spe(r.SPE), r.After, r.Extra, r.Count))
	}
	for _, r := range p.Fails {
		parts = append(parts, fmt.Sprintf("failflush:%s:%d:%d", spe(r.SPE), r.After, r.Count))
	}
	for _, r := range p.Corrupts {
		off := "rand"
		if !r.RandomOff {
			off = strconv.Itoa(r.Offset)
		}
		xor := "rand"
		if !r.RandomXOR {
			xor = fmt.Sprintf("%#02x", r.XOR)
		}
		parts = append(parts, fmt.Sprintf("corrupt:%s:%s", off, xor))
	}
	switch {
	case p.TruncateBytes < 0:
		parts = append(parts, "truncate:rand")
	case p.TruncateBytes > 0:
		parts = append(parts, fmt.Sprintf("truncate:%d", p.TruncateBytes))
	}
	return strings.Join(parts, ",")
}
