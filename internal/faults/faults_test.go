package faults

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFull(t *testing.T) {
	p, err := Parse("seed:7,kill:250000,stall:0:5000:4000:2,failflush:*:0:3,corrupt:100:0x5a,corrupt:rand:rand,truncate:64")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || !p.HasKill || p.KillAt != 250000 {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.Stalls) != 1 || p.Stalls[0] != (StallRule{SPE: 0, After: 5000, Extra: 4000, Count: 2}) {
		t.Fatalf("stalls = %+v", p.Stalls)
	}
	if len(p.Fails) != 1 || p.Fails[0] != (FailRule{SPE: AnySPE, After: 0, Count: 3}) {
		t.Fatalf("fails = %+v", p.Fails)
	}
	if len(p.Corrupts) != 2 || p.Corrupts[0].Offset != 100 || p.Corrupts[0].XOR != 0x5A {
		t.Fatalf("corrupts = %+v", p.Corrupts)
	}
	if !p.Corrupts[1].RandomOff || !p.Corrupts[1].RandomXOR {
		t.Fatalf("corrupts[1] = %+v", p.Corrupts[1])
	}
	if p.TruncateBytes != 64 {
		t.Fatalf("truncate = %d", p.TruncateBytes)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	p, err := Parse("")
	if err != nil || !p.Empty() {
		t.Fatalf("empty spec: %v, %+v", err, p)
	}
	for _, bad := range []string{
		"bogus:1", "kill", "kill:abc", "stall:0:1", "stall:x:1:2",
		"failflush:0", "corrupt:abc", "corrupt:1:0", "truncate:x", "seed:-1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	spec := "seed:7,kill:250000,stall:0:5000:4000:2,failflush:*:0:3,corrupt:100:0x5a,truncate:rand"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("canonical %q does not re-parse: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip: %q vs %q", p.String(), p2.String())
	}
}

func TestFlushStallConsumption(t *testing.T) {
	p, err := Parse("stall:1:1000:500:2")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.FlushStall(0, 2000); got != 0 {
		t.Fatalf("wrong SPE stalled %d cycles", got)
	}
	if got := p.FlushStall(1, 500); got != 0 {
		t.Fatalf("stalled before After: %d", got)
	}
	for i := 0; i < 2; i++ {
		if got := p.FlushStall(1, 1000+uint64(i)); got != 500 {
			t.Fatalf("use %d: stall = %d, want 500", i, got)
		}
	}
	if got := p.FlushStall(1, 9999); got != 0 {
		t.Fatalf("count exhausted but stalled %d", got)
	}
}

func TestFlushFailConsumption(t *testing.T) {
	p, err := Parse("failflush:*:100:2")
	if err != nil {
		t.Fatal(err)
	}
	if p.FlushFail(3, 50) {
		t.Fatal("failed before After cycle")
	}
	if !p.FlushFail(3, 100) || !p.FlushFail(5, 200) {
		t.Fatal("expected two failures")
	}
	if p.FlushFail(3, 300) {
		t.Fatal("count exhausted but still failing")
	}
}

func TestMangleTraceDeterministic(t *testing.T) {
	base := bytes.Repeat([]byte{0xAA}, 400)
	out1, notes1 := mustPlan(t, "seed:9,corrupt:rand:rand,truncate:rand").MangleTrace(base)
	out2, notes2 := mustPlan(t, "seed:9,corrupt:rand:rand,truncate:rand").MangleTrace(base)
	if !bytes.Equal(out1, out2) || strings.Join(notes1, ";") != strings.Join(notes2, ";") {
		t.Fatalf("same seed diverged:\n%v\n%v", notes1, notes2)
	}
	out3, _ := mustPlan(t, "seed:10,corrupt:rand:rand,truncate:rand").MangleTrace(base)
	if bytes.Equal(out1, out3) {
		t.Fatal("different seeds produced identical mangling")
	}
	if bytes.Equal(base, out1[:len(out1)]) && len(out1) == len(base) {
		t.Fatal("mangle changed nothing")
	}
	// The input must never be modified in place.
	for _, b := range base {
		if b != 0xAA {
			t.Fatal("MangleTrace modified its input")
		}
	}
}

func TestMangleTraceFixedOffsets(t *testing.T) {
	base := make([]byte, 100)
	out, notes := mustPlan(t, "corrupt:10:0x01,truncate:20").MangleTrace(base)
	if len(out) != 80 {
		t.Fatalf("len = %d, want 80", len(out))
	}
	if out[10] != 0x01 {
		t.Fatalf("byte 10 = %#x", out[10])
	}
	if len(notes) != 2 {
		t.Fatalf("notes = %v", notes)
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Fatal("nil plan not empty")
	}
	if _, ok := p.Kill(); ok {
		t.Fatal("nil plan kills")
	}
	if p.FlushStall(0, 0) != 0 || p.FlushFail(0, 0) {
		t.Fatal("nil plan injects")
	}
	data := []byte{1, 2, 3}
	out, notes := p.MangleTrace(data)
	if !bytes.Equal(out, data) || notes != nil {
		t.Fatal("nil plan mangles")
	}
}

func mustPlan(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
