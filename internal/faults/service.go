package faults

// Service-level fault injection: where Plan disturbs the simulated
// tracer (cycles, DMAs, serialized bytes), ServicePlan disturbs the
// analysis service's durable state — the disk cache tier and the job
// journal — plus the process itself. The same philosophy applies:
// deterministic, seed-free consumption order, parsed from a compact
// spec so a chaos run is reproducible from its command line.
//
// Spec grammar: comma-separated directives, fields separated by colons.
//
//	diskfull:AFTER[:N]     fail disk writes once AFTER total payload
//	                       bytes have been written; N failures
//	                       (default 1, * = every write from then on)
//	slowdisk:MS            delay every disk I/O by MS milliseconds
//	torn:NTH[:KEEP]        the NTH disk write (1-based, counting every
//	                       write attempt) persists only KEEP bytes
//	                       (default half) and reports ErrTornWrite —
//	                       the caller must treat it as a crash point
//	killphase:PHASE[:NTH]  request a process kill at the NTH time a job
//	                       reaches PHASE (accept|start|render|done|
//	                       webhook; default 1)
//	netdrop:PEER[:N]       fail the next N calls to the named peer
//	                       (default 1, * = every call) with an injected
//	                       connection error; PEER may be * for any peer
//	netlat:PEER:MS         delay every call to the named peer by MS
//	                       milliseconds (PEER may be *)
//	partition:A|B          drop all traffic between side A and side B;
//	                       each side is a +-separated peer-name list and
//	                       the rule applies when this process's own name
//	                       is on one side and the callee on the other
//
// Example: -chaos 'diskfull:4096:*,slowdisk:5,netlat:b:20,partition:a|b+c'
//
// Unlike Plan, a ServicePlan is consulted from concurrent request and
// worker goroutines, so its consumption state is mutex-guarded.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// ErrDiskFull is the injected write failure for diskfull directives; it
// stands in for ENOSPC.
var ErrDiskFull = errors.New("faults: injected disk full")

// ErrTornWrite is returned alongside a partial write for torn
// directives: the bytes before the tear reached the medium, the rest —
// and the success return — never happened.
var ErrTornWrite = errors.New("faults: injected torn write")

// EveryTime marks a diskfull rule that fails all writes once armed
// (spelled * in specs).
const EveryTime = -1

// DiskFullRule fails writes once After total payload bytes have been
// written, Count times (EveryTime = forever).
type DiskFullRule struct {
	After int64
	Count int
	used  int
}

// TornRule tears the Nth write so that only Keep bytes persist.
// Keep < 0 means half of the attempted write.
type TornRule struct {
	Nth  int
	Keep int
	done bool
}

// KillRule requests a process kill the Nth time a job reaches Phase.
type KillRule struct {
	Phase string
	Nth   int
	seen  int
}

// NetDropRule fails calls to a peer: the next Count calls (EveryTime =
// all of them). Peer "*" matches any peer.
type NetDropRule struct {
	Peer  string
	Count int
	used  int
}

// NetLatRule delays every call to a peer. Peer "*" matches any peer.
type NetLatRule struct {
	Peer  string
	Delay time.Duration
}

// PartitionRule drops all traffic between the two named sides. It is
// evaluated against (self, callee): the call fails when the two names
// sit on opposite sides.
type PartitionRule struct {
	A, B []string
}

func (r PartitionRule) separates(self, peer string) bool {
	return (contains(r.A, self) && contains(r.B, peer)) ||
		(contains(r.B, self) && contains(r.A, peer))
}

func contains(names []string, n string) bool {
	for _, v := range names {
		if v == n {
			return true
		}
	}
	return false
}

// ServicePlan is a parsed service-level fault plan. The zero value (and
// a nil plan) injects nothing; all methods are nil-safe and
// concurrency-safe.
type ServicePlan struct {
	DiskFulls []DiskFullRule
	SlowDisk  time.Duration
	Torns     []TornRule
	Kills     []KillRule
	NetDrops  []NetDropRule
	NetLats   []NetLatRule
	// Partitions are guarded by mu: chaos harnesses arm and heal them at
	// runtime (Partition/Heal) while request goroutines consult NetFault.
	Partitions []PartitionRule

	mu      sync.Mutex
	written int64 // total payload bytes successfully presented for write
	writes  int   // total write attempts, for torn's Nth
}

// JobPhases lists the job phases killphase accepts, in lifecycle order.
var JobPhases = []string{"accept", "start", "render", "done", "webhook"}

func validPhase(p string) bool {
	for _, ph := range JobPhases {
		if p == ph {
			return true
		}
	}
	return false
}

// ParseService builds a ServicePlan from a spec string; see the file
// comment for the grammar. An empty spec yields an empty plan.
func ParseService(spec string) (*ServicePlan, error) {
	p := &ServicePlan{}
	for _, dir := range strings.Split(spec, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		fields := strings.Split(dir, ":")
		name, args := fields[0], fields[1:]
		var err error
		switch name {
		case "diskfull":
			err = p.parseDiskFull(args)
		case "slowdisk":
			err = p.parseSlowDisk(args)
		case "torn":
			err = p.parseTorn(args)
		case "killphase":
			err = p.parseKillPhase(args)
		case "netdrop":
			err = p.parseNetDrop(args)
		case "netlat":
			err = p.parseNetLat(args)
		case "partition":
			err = p.parsePartition(args)
		default:
			err = fmt.Errorf("unknown directive %q", name)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: %q: %w", dir, err)
		}
	}
	return p, nil
}

func (p *ServicePlan) parseDiskFull(args []string) error {
	if err := argCount(args, 1, 2); err != nil {
		return err
	}
	after, err := parseU64(args[0], "byte threshold")
	if err != nil {
		return err
	}
	r := DiskFullRule{After: int64(after), Count: 1}
	if len(args) == 2 {
		if args[1] == "*" {
			r.Count = EveryTime
		} else {
			n, err := parseU64(args[1], "count")
			if err != nil {
				return err
			}
			r.Count = int(n)
		}
	}
	p.DiskFulls = append(p.DiskFulls, r)
	return nil
}

func (p *ServicePlan) parseSlowDisk(args []string) error {
	if err := argCount(args, 1, 1); err != nil {
		return err
	}
	ms, err := parseU64(args[0], "milliseconds")
	if err != nil {
		return err
	}
	p.SlowDisk = time.Duration(ms) * time.Millisecond
	return nil
}

func (p *ServicePlan) parseTorn(args []string) error {
	if err := argCount(args, 1, 2); err != nil {
		return err
	}
	nth, err := parseU64(args[0], "write index")
	if err != nil || nth == 0 {
		return fmt.Errorf("bad write index %q (1-based)", args[0])
	}
	r := TornRule{Nth: int(nth), Keep: -1}
	if len(args) == 2 {
		keep, err := parseU64(args[1], "keep bytes")
		if err != nil {
			return err
		}
		r.Keep = int(keep)
	}
	p.Torns = append(p.Torns, r)
	return nil
}

func (p *ServicePlan) parseKillPhase(args []string) error {
	if err := argCount(args, 1, 2); err != nil {
		return err
	}
	if !validPhase(args[0]) {
		return fmt.Errorf("bad phase %q (want one of %s)", args[0], strings.Join(JobPhases, "|"))
	}
	r := KillRule{Phase: args[0], Nth: 1}
	if len(args) == 2 {
		n, err := parseU64(args[1], "occurrence")
		if err != nil || n == 0 {
			return fmt.Errorf("bad occurrence %q (1-based)", args[1])
		}
		r.Nth = int(n)
	}
	p.Kills = append(p.Kills, r)
	return nil
}

func (p *ServicePlan) parseNetDrop(args []string) error {
	if err := argCount(args, 1, 2); err != nil {
		return err
	}
	if args[0] == "" {
		return fmt.Errorf("empty peer name")
	}
	r := NetDropRule{Peer: args[0], Count: 1}
	if len(args) == 2 {
		if args[1] == "*" {
			r.Count = EveryTime
		} else {
			n, err := parseU64(args[1], "count")
			if err != nil || n == 0 {
				return fmt.Errorf("bad count %q", args[1])
			}
			r.Count = int(n)
		}
	}
	p.NetDrops = append(p.NetDrops, r)
	return nil
}

func (p *ServicePlan) parseNetLat(args []string) error {
	if err := argCount(args, 2, 2); err != nil {
		return err
	}
	if args[0] == "" {
		return fmt.Errorf("empty peer name")
	}
	ms, err := parseU64(args[1], "milliseconds")
	if err != nil {
		return err
	}
	p.NetLats = append(p.NetLats, NetLatRule{Peer: args[0], Delay: time.Duration(ms) * time.Millisecond})
	return nil
}

func (p *ServicePlan) parsePartition(args []string) error {
	if err := argCount(args, 1, 1); err != nil {
		return err
	}
	sides := strings.Split(args[0], "|")
	if len(sides) != 2 {
		return fmt.Errorf("want exactly two |-separated sides, got %q", args[0])
	}
	rule := PartitionRule{A: splitSide(sides[0]), B: splitSide(sides[1])}
	if len(rule.A) == 0 || len(rule.B) == 0 {
		return fmt.Errorf("empty partition side in %q", args[0])
	}
	p.Partitions = append(p.Partitions, rule)
	return nil
}

// splitSide parses one +-separated peer-name list, dropping empties.
func splitSide(s string) []string {
	var out []string
	for _, n := range strings.Split(s, "+") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Empty reports whether the plan injects nothing.
func (p *ServicePlan) Empty() bool {
	return p == nil || (len(p.DiskFulls) == 0 && p.SlowDisk == 0 &&
		len(p.Torns) == 0 && len(p.Kills) == 0 &&
		len(p.NetDrops) == 0 && len(p.NetLats) == 0 && len(p.Partitions) == 0)
}

// BeforeIO blocks for the configured slow-disk delay. Call it at the
// top of every disk operation (reads and writes both — a slow disk does
// not care which way the bytes flow).
func (p *ServicePlan) BeforeIO() {
	if p == nil || p.SlowDisk == 0 {
		return
	}
	time.Sleep(p.SlowDisk)
}

// WriteFault is consulted once per disk write of n payload bytes, in
// consumption order. It returns how many bytes actually persist and the
// injected error, if any:
//
//   - keep == n, err == nil: the write proceeds untouched.
//   - err == ErrDiskFull: nothing persists; the write fails cleanly.
//   - err == ErrTornWrite: exactly keep < n bytes persist and then the
//     "process dies" mid-write; the caller must persist the prefix and
//     propagate the error without retrying.
func (p *ServicePlan) WriteFault(n int) (keep int, err error) {
	if p == nil {
		return n, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writes++
	for i := range p.Torns {
		r := &p.Torns[i]
		if !r.done && p.writes == r.Nth {
			r.done = true
			keep = r.Keep
			if keep < 0 {
				keep = n / 2
			}
			if keep > n {
				keep = n
			}
			p.written += int64(keep)
			return keep, ErrTornWrite
		}
	}
	for i := range p.DiskFulls {
		r := &p.DiskFulls[i]
		armed := p.written >= r.After
		if armed && (r.Count == EveryTime || r.used < r.Count) {
			r.used++
			return 0, ErrDiskFull
		}
	}
	p.written += int64(n)
	return n, nil
}

// ErrNetDrop is the injected connection failure for netdrop and
// partition directives; it stands in for a refused or reset connection.
var ErrNetDrop = errors.New("faults: injected network drop")

// NetFault is consulted once per outgoing peer call from self to peer,
// in consumption order. It returns an injected latency to apply before
// the call and whether the call must fail with ErrNetDrop instead of
// reaching the network. Latency applies even to dropped calls — a
// partitioned link looks slow before it looks dead.
func (p *ServicePlan) NetFault(self, peer string) (delay time.Duration, drop bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.NetLats {
		if r.Peer == "*" || r.Peer == peer {
			delay += r.Delay
		}
	}
	for i := range p.NetDrops {
		r := &p.NetDrops[i]
		if r.Peer != "*" && r.Peer != peer {
			continue
		}
		if r.Count == EveryTime || r.used < r.Count {
			r.used++
			return delay, true
		}
	}
	for _, r := range p.Partitions {
		if r.separates(self, peer) {
			return delay, true
		}
	}
	return delay, false
}

// Partition arms a partition rule at runtime — the chaos harness's way
// of cutting a link mid-request without restarting the process.
func (p *ServicePlan) Partition(a, b []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Partitions = append(p.Partitions, PartitionRule{A: a, B: b})
}

// Heal lifts every partition and exhausts nothing else: netdrop budgets
// and latency rules keep their state. The chaos harness calls it to
// model a network that recovers.
func (p *ServicePlan) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Partitions = nil
}

// Kill reports whether the process should die now, at the given job
// phase, consuming the matching rule occurrence.
func (p *ServicePlan) Kill(phase string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.Kills {
		r := &p.Kills[i]
		if r.Phase == phase {
			r.seen++
			if r.seen == r.Nth {
				return true
			}
		}
	}
	return false
}

// String renders the plan back to a canonical spec (consumption state
// is not represented).
func (p *ServicePlan) String() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var parts []string
	for _, r := range p.DiskFulls {
		if r.Count == EveryTime {
			parts = append(parts, fmt.Sprintf("diskfull:%d:*", r.After))
		} else {
			parts = append(parts, fmt.Sprintf("diskfull:%d:%d", r.After, r.Count))
		}
	}
	if p.SlowDisk != 0 {
		parts = append(parts, fmt.Sprintf("slowdisk:%d", p.SlowDisk/time.Millisecond))
	}
	for _, r := range p.Torns {
		if r.Keep < 0 {
			parts = append(parts, fmt.Sprintf("torn:%d", r.Nth))
		} else {
			parts = append(parts, fmt.Sprintf("torn:%d:%d", r.Nth, r.Keep))
		}
	}
	for _, r := range p.Kills {
		parts = append(parts, fmt.Sprintf("killphase:%s:%d", r.Phase, r.Nth))
	}
	for _, r := range p.NetDrops {
		if r.Count == EveryTime {
			parts = append(parts, fmt.Sprintf("netdrop:%s:*", r.Peer))
		} else {
			parts = append(parts, fmt.Sprintf("netdrop:%s:%d", r.Peer, r.Count))
		}
	}
	for _, r := range p.NetLats {
		parts = append(parts, fmt.Sprintf("netlat:%s:%d", r.Peer, r.Delay/time.Millisecond))
	}
	for _, r := range p.Partitions {
		parts = append(parts, fmt.Sprintf("partition:%s|%s",
			strings.Join(r.A, "+"), strings.Join(r.B, "+")))
	}
	return strings.Join(parts, ",")
}
