package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestParseServiceRoundTrip(t *testing.T) {
	specs := []string{
		"diskfull:4096:1",
		"diskfull:0:*",
		"slowdisk:5",
		"torn:3",
		"torn:3:7",
		"killphase:render:1",
		"killphase:done:2",
		"netdrop:b:1",
		"netdrop:*:*",
		"netlat:b:20",
		"partition:a|b+c",
		"diskfull:4096:2,slowdisk:5,torn:1:0,killphase:accept:1,netdrop:b:3,netlat:*:5,partition:a+b|c",
	}
	for _, spec := range specs {
		p, err := ParseService(spec)
		if err != nil {
			t.Fatalf("ParseService(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("ParseService(%q).String() = %q", spec, got)
		}
	}
}

func TestParseServiceRejects(t *testing.T) {
	for _, spec := range []string{
		"diskfull",             // missing threshold
		"diskfull:x",           // non-numeric
		"slowdisk:5:5",         // too many args
		"torn:0",               // 1-based index
		"killphase:nonesuch",   // unknown phase
		"killphase:render:0",   // 1-based occurrence
		"stall:0:0:10",         // sim directive, wrong plan type
		"diskfull:1,torn:zero", // error position in multi-spec
		"netdrop",              // missing peer
		"netdrop::2",           // empty peer
		"netdrop:b:0",          // zero count
		"netlat:b",             // missing delay
		"netlat:b:fast",        // non-numeric delay
		"partition:a",          // one side only
		"partition:a|b|c",      // three sides
		"partition:|b",         // empty side
	} {
		if _, err := ParseService(spec); err == nil {
			t.Errorf("ParseService(%q) accepted", spec)
		}
	}
}

func TestServicePlanEmptyAndNil(t *testing.T) {
	var nilPlan *ServicePlan
	if !nilPlan.Empty() {
		t.Error("nil plan not Empty")
	}
	nilPlan.BeforeIO() // must not panic
	if keep, err := nilPlan.WriteFault(10); keep != 10 || err != nil {
		t.Errorf("nil WriteFault = %d, %v", keep, err)
	}
	if nilPlan.Kill("render") {
		t.Error("nil plan kills")
	}
	p, err := ParseService("")
	if err != nil || !p.Empty() {
		t.Fatalf("empty spec: %v, Empty=%v", err, p.Empty())
	}
}

func TestDiskFullConsumption(t *testing.T) {
	p, err := ParseService("diskfull:100:2")
	if err != nil {
		t.Fatal(err)
	}
	// Below the threshold: writes sail through and accumulate.
	for i := 0; i < 4; i++ {
		if keep, err := p.WriteFault(25); keep != 25 || err != nil {
			t.Fatalf("write %d: keep=%d err=%v", i, keep, err)
		}
	}
	// 100 bytes written: the next two writes fail, then recovery.
	for i := 0; i < 2; i++ {
		if keep, err := p.WriteFault(10); !errors.Is(err, ErrDiskFull) || keep != 0 {
			t.Fatalf("armed write %d: keep=%d err=%v, want ErrDiskFull", i, keep, err)
		}
	}
	if keep, err := p.WriteFault(10); keep != 10 || err != nil {
		t.Fatalf("post-budget write: keep=%d err=%v", keep, err)
	}
}

func TestDiskFullForever(t *testing.T) {
	p, err := ParseService("diskfull:0:*")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := p.WriteFault(1); !errors.Is(err, ErrDiskFull) {
			t.Fatalf("write %d survived a diskfull:0:*", i)
		}
	}
}

func TestTornWrite(t *testing.T) {
	p, err := ParseService("torn:2:3")
	if err != nil {
		t.Fatal(err)
	}
	if keep, err := p.WriteFault(10); keep != 10 || err != nil {
		t.Fatalf("write 1: keep=%d err=%v", keep, err)
	}
	keep, err := p.WriteFault(10)
	if !errors.Is(err, ErrTornWrite) || keep != 3 {
		t.Fatalf("write 2: keep=%d err=%v, want 3, ErrTornWrite", keep, err)
	}
	// One-shot: the rule is consumed.
	if keep, err := p.WriteFault(10); keep != 10 || err != nil {
		t.Fatalf("write 3: keep=%d err=%v", keep, err)
	}
}

func TestTornWriteDefaultKeepIsHalf(t *testing.T) {
	p, err := ParseService("torn:1")
	if err != nil {
		t.Fatal(err)
	}
	if keep, err := p.WriteFault(9); !errors.Is(err, ErrTornWrite) || keep != 4 {
		t.Fatalf("keep=%d err=%v, want 4 (half of 9), ErrTornWrite", keep, err)
	}
}

func TestKillPhaseNth(t *testing.T) {
	p, err := ParseService("killphase:render:2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kill("accept") || p.Kill("done") {
		t.Error("killed at a non-matching phase")
	}
	if p.Kill("render") {
		t.Error("killed at occurrence 1, rule says 2")
	}
	if !p.Kill("render") {
		t.Error("did not kill at occurrence 2")
	}
	if p.Kill("render") {
		t.Error("killed again after the rule fired")
	}
}

func TestSlowDiskDelays(t *testing.T) {
	p, err := ParseService("slowdisk:30")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	p.BeforeIO()
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("BeforeIO returned after %v, want >= ~30ms", d)
	}
}

func TestNetDropConsumption(t *testing.T) {
	p, err := ParseService("netdrop:b:2")
	if err != nil {
		t.Fatal(err)
	}
	// Calls to other peers are untouched.
	if _, drop := p.NetFault("a", "c"); drop {
		t.Fatal("dropped a call to an unmatched peer")
	}
	for i := 0; i < 2; i++ {
		if _, drop := p.NetFault("a", "b"); !drop {
			t.Fatalf("call %d to b survived the drop budget", i)
		}
	}
	if _, drop := p.NetFault("a", "b"); drop {
		t.Fatal("netdrop fired past its budget")
	}

	p, err = ParseService("netdrop:*:*")
	if err != nil {
		t.Fatal(err)
	}
	for _, peer := range []string{"b", "c", "b"} {
		if _, drop := p.NetFault("a", peer); !drop {
			t.Fatalf("netdrop:*:* let a call to %s through", peer)
		}
	}
}

func TestNetLatAccumulates(t *testing.T) {
	p, err := ParseService("netlat:b:20,netlat:*:5")
	if err != nil {
		t.Fatal(err)
	}
	if d, drop := p.NetFault("a", "b"); drop || d != 25*time.Millisecond {
		t.Fatalf("latency to b: %v drop=%v, want 25ms", d, drop)
	}
	if d, drop := p.NetFault("a", "c"); drop || d != 5*time.Millisecond {
		t.Fatalf("latency to c: %v drop=%v, want 5ms", d, drop)
	}
}

func TestPartitionSeparatesBothDirections(t *testing.T) {
	p, err := ParseService("partition:a|b+c")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		self, peer string
		want       bool
	}{
		{"a", "b", true},
		{"a", "c", true},
		{"b", "a", true}, // symmetric
		{"c", "a", true},
		{"b", "c", false}, // same side
		{"a", "a", false},
		{"d", "a", false}, // outsider
	} {
		if _, drop := p.NetFault(c.self, c.peer); drop != c.want {
			t.Errorf("NetFault(%s, %s) drop = %v, want %v", c.self, c.peer, drop, c.want)
		}
	}
}

func TestPartitionArmAndHealAtRuntime(t *testing.T) {
	p, err := ParseService("")
	if err != nil {
		t.Fatal(err)
	}
	if _, drop := p.NetFault("a", "b"); drop {
		t.Fatal("empty plan drops")
	}
	p.Partition([]string{"a"}, []string{"b"})
	if _, drop := p.NetFault("a", "b"); !drop {
		t.Fatal("armed partition did not drop")
	}
	p.Heal()
	if _, drop := p.NetFault("a", "b"); drop {
		t.Fatal("healed partition still drops")
	}
	// Heal lifts partitions only; drop budgets survive.
	p2, _ := ParseService("netdrop:b:1")
	p2.Heal()
	if _, drop := p2.NetFault("a", "b"); !drop {
		t.Fatal("Heal consumed an unrelated netdrop budget")
	}
}

func TestNetFaultNilSafe(t *testing.T) {
	var nilPlan *ServicePlan
	if d, drop := nilPlan.NetFault("a", "b"); d != 0 || drop {
		t.Fatalf("nil NetFault = %v, %v", d, drop)
	}
}

// TestServicePlanConcurrent hammers one plan from many goroutines: the
// counters must stay consistent (exactly Count failures) under -race.
func TestServicePlanConcurrent(t *testing.T) {
	p, err := ParseService("diskfull:0:64,torn:100:1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	fails, torn := 0, 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := p.WriteFault(8)
				mu.Lock()
				switch {
				case errors.Is(err, ErrDiskFull):
					fails++
				case errors.Is(err, ErrTornWrite):
					torn++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fails != 64 {
		t.Errorf("diskfull fired %d times, want exactly 64", fails)
	}
	if torn != 1 {
		t.Errorf("torn fired %d times, want exactly 1", torn)
	}
}
