package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestParseServiceRoundTrip(t *testing.T) {
	specs := []string{
		"diskfull:4096:1",
		"diskfull:0:*",
		"slowdisk:5",
		"torn:3",
		"torn:3:7",
		"killphase:render:1",
		"killphase:done:2",
		"diskfull:4096:2,slowdisk:5,torn:1:0,killphase:accept:1",
	}
	for _, spec := range specs {
		p, err := ParseService(spec)
		if err != nil {
			t.Fatalf("ParseService(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("ParseService(%q).String() = %q", spec, got)
		}
	}
}

func TestParseServiceRejects(t *testing.T) {
	for _, spec := range []string{
		"diskfull",             // missing threshold
		"diskfull:x",           // non-numeric
		"slowdisk:5:5",         // too many args
		"torn:0",               // 1-based index
		"killphase:nonesuch",   // unknown phase
		"killphase:render:0",   // 1-based occurrence
		"stall:0:0:10",         // sim directive, wrong plan type
		"diskfull:1,torn:zero", // error position in multi-spec
	} {
		if _, err := ParseService(spec); err == nil {
			t.Errorf("ParseService(%q) accepted", spec)
		}
	}
}

func TestServicePlanEmptyAndNil(t *testing.T) {
	var nilPlan *ServicePlan
	if !nilPlan.Empty() {
		t.Error("nil plan not Empty")
	}
	nilPlan.BeforeIO() // must not panic
	if keep, err := nilPlan.WriteFault(10); keep != 10 || err != nil {
		t.Errorf("nil WriteFault = %d, %v", keep, err)
	}
	if nilPlan.Kill("render") {
		t.Error("nil plan kills")
	}
	p, err := ParseService("")
	if err != nil || !p.Empty() {
		t.Fatalf("empty spec: %v, Empty=%v", err, p.Empty())
	}
}

func TestDiskFullConsumption(t *testing.T) {
	p, err := ParseService("diskfull:100:2")
	if err != nil {
		t.Fatal(err)
	}
	// Below the threshold: writes sail through and accumulate.
	for i := 0; i < 4; i++ {
		if keep, err := p.WriteFault(25); keep != 25 || err != nil {
			t.Fatalf("write %d: keep=%d err=%v", i, keep, err)
		}
	}
	// 100 bytes written: the next two writes fail, then recovery.
	for i := 0; i < 2; i++ {
		if keep, err := p.WriteFault(10); !errors.Is(err, ErrDiskFull) || keep != 0 {
			t.Fatalf("armed write %d: keep=%d err=%v, want ErrDiskFull", i, keep, err)
		}
	}
	if keep, err := p.WriteFault(10); keep != 10 || err != nil {
		t.Fatalf("post-budget write: keep=%d err=%v", keep, err)
	}
}

func TestDiskFullForever(t *testing.T) {
	p, err := ParseService("diskfull:0:*")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := p.WriteFault(1); !errors.Is(err, ErrDiskFull) {
			t.Fatalf("write %d survived a diskfull:0:*", i)
		}
	}
}

func TestTornWrite(t *testing.T) {
	p, err := ParseService("torn:2:3")
	if err != nil {
		t.Fatal(err)
	}
	if keep, err := p.WriteFault(10); keep != 10 || err != nil {
		t.Fatalf("write 1: keep=%d err=%v", keep, err)
	}
	keep, err := p.WriteFault(10)
	if !errors.Is(err, ErrTornWrite) || keep != 3 {
		t.Fatalf("write 2: keep=%d err=%v, want 3, ErrTornWrite", keep, err)
	}
	// One-shot: the rule is consumed.
	if keep, err := p.WriteFault(10); keep != 10 || err != nil {
		t.Fatalf("write 3: keep=%d err=%v", keep, err)
	}
}

func TestTornWriteDefaultKeepIsHalf(t *testing.T) {
	p, err := ParseService("torn:1")
	if err != nil {
		t.Fatal(err)
	}
	if keep, err := p.WriteFault(9); !errors.Is(err, ErrTornWrite) || keep != 4 {
		t.Fatalf("keep=%d err=%v, want 4 (half of 9), ErrTornWrite", keep, err)
	}
}

func TestKillPhaseNth(t *testing.T) {
	p, err := ParseService("killphase:render:2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kill("accept") || p.Kill("done") {
		t.Error("killed at a non-matching phase")
	}
	if p.Kill("render") {
		t.Error("killed at occurrence 1, rule says 2")
	}
	if !p.Kill("render") {
		t.Error("did not kill at occurrence 2")
	}
	if p.Kill("render") {
		t.Error("killed again after the rule fired")
	}
}

func TestSlowDiskDelays(t *testing.T) {
	p, err := ParseService("slowdisk:30")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	p.BeforeIO()
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("BeforeIO returned after %v, want >= ~30ms", d)
	}
}

// TestServicePlanConcurrent hammers one plan from many goroutines: the
// counters must stay consistent (exactly Count failures) under -race.
func TestServicePlanConcurrent(t *testing.T) {
	p, err := ParseService("diskfull:0:64,torn:100:1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	fails, torn := 0, 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := p.WriteFault(8)
				mu.Lock()
				switch {
				case errors.Is(err, ErrDiskFull):
					fails++
				case errors.Is(err, ErrTornWrite):
					torn++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fails != 64 {
		t.Errorf("diskfull fired %d times, want exactly 64", fails)
	}
	if torn != 1 {
		t.Errorf("torn fired %d times, want exactly 1", torn)
	}
}
