package harness

import (
	"fmt"
	"io"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/cellsync"
)

// runE12 compares the two cellsync barrier implementations — atomic
// (main-storage reservation traffic with spin backoff) vs signal fabric
// (sndsig collect/release through the EIB) — across party counts.
// Expected shape: the signal barrier is several times faster and scales
// more gently with parties, mirroring measured Cell barrier studies.
func runE12(w io.Writer, quick bool) error {
	rounds := 50
	parties := []int{2, 4, 8}
	if quick {
		rounds = 10
		parties = []int{2, 8}
	}
	measure := func(n int, useSignal bool) (uint64, error) {
		mc := cell.DefaultConfig()
		mc.MemSize = 8 * cell.MiB
		m := cell.NewMachine(mc)
		ab := cellsync.NewBarrier(m, 1, n)
		sb := cellsync.NewSignalBarrier(2, n, 9)
		m.RunMain(func(h cell.Host) {
			var hs []*cell.SPEHandle
			for i := 0; i < n; i++ {
				hs = append(hs, h.Run(i, "barrier", func(spu cell.SPU) uint32 {
					for r := 0; r < rounds; r++ {
						if useSignal {
							sb.Wait(spu)
						} else {
							ab.Wait(spu)
						}
					}
					return 0
				}))
			}
			for _, hd := range hs {
				h.Wait(hd)
			}
		})
		if err := m.Run(); err != nil {
			return 0, err
		}
		return m.Now() / uint64(rounds), nil
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "parties\tatomic cycles/round\tsignal cycles/round\tsignal speedup")
	for _, n := range parties {
		a, err := measure(n, false)
		if err != nil {
			return err
		}
		s, err := measure(n, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2fx\n", n, a, s, float64(a)/float64(s))
	}
	return tw.Flush()
}
