package harness

import (
	"bytes"
	"fmt"
	"io"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cycles"
	"github.com/celltrace/pdt/internal/core"
)

// e15Workload names one iterative workload and its size.
type e15Workload struct {
	Name   string
	Params map[string]string
}

// e15Workloads are the iterative workloads whose steady-state loop the
// cycle detector must recover, with sizes per mode.
func e15Workloads(quick bool) []e15Workload {
	if quick {
		return []e15Workload{
			{"pipeline", map[string]string{"blocks": "8", "blockbytes": "1024"}},
			{"stencil", map[string]string{"w": "64", "h": "16", "iters": "4"}},
			{"taskfarm", map[string]string{"tasks": "16", "blockbytes": "1024"}},
			{"stream", map[string]string{"elements": "131072"}},
		}
	}
	return []e15Workload{
		{"pipeline", map[string]string{"blocks": "32", "blockbytes": "4096"}},
		{"stencil", map[string]string{"w": "128", "h": "64", "iters": "8"}},
		{"taskfarm", map[string]string{"tasks": "64", "blockbytes": "4096"}},
		{"stream", map[string]string{"elements": "524288"}},
	}
}

// runE15 runs each iterative workload fully traced, detects its per-run
// cycle structure, and tabulates per-cycle variance: how regular the
// steady state is (wall-time CV), where time goes inside one iteration
// (busy/stall/DMA-wait shares of the mean cycle), and how much of the
// run the warmup and drain phases eat. A run the detector rejects prints
// as "-" — for these workloads that is a finding, not an expectation.
func runE15(w io.Writer, quick bool) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tcore\trun\tcycles\twall avg\twall CV%\tbusy%\tstall%\tdma-wait%\tsteady%")
	for _, wl := range e15Workloads(quick) {
		cfg := core.DefaultTraceConfig()
		res, err := Run(Spec{Workload: wl.Name, Params: wl.Params, Trace: &cfg})
		if err != nil {
			return err
		}
		tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
		if err != nil {
			return err
		}
		rep := cycles.Detect(tr, cycles.Options{})
		for i := range rep.Runs {
			r := &rep.Runs[i]
			if !r.Detected {
				fmt.Fprintf(tw, "%s\tSPE%d\t%d\t-\t\t\t\t\t\t\n", wl.Name, r.Core, r.Run)
				continue
			}
			cv := 0.0
			if r.Wall.Avg > 0 {
				cv = r.Wall.Stddev / r.Wall.Avg * 100
			}
			share := func(s cycles.Stats) float64 {
				if r.Wall.Avg == 0 {
					return 0
				}
				return s.Avg / r.Wall.Avg * 100
			}
			wall := r.End - r.Start
			steady := 0.0
			if wall > 0 {
				steady = float64(r.Phases.SteadyTicks) / float64(wall) * 100
			}
			fmt.Fprintf(tw, "%s\tSPE%d\t%d\t%d\t%.0f\t%.2f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				wl.Name, r.Core, r.Run, len(r.Cycles), r.Wall.Avg, cv,
				share(r.Busy), share(r.Stall), share(r.DMAWait), steady)
		}
	}
	return tw.Flush()
}
