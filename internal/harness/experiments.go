package harness

import (
	"bytes"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
)

// Experiment regenerates one table or figure of the (reconstructed)
// evaluation; see DESIGN.md section 3 for the index.
type Experiment struct {
	ID    string
	Title string
	// Run prints the table/series to w. quick shrinks problem sizes for
	// smoke tests; full sizes reproduce the recorded results.
	Run func(w io.Writer, quick bool) error
}

// Experiments lists every experiment in order.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", "Table 1: PDT event inventory", runE1},
		{"E2", "Table 2: per-event tracing cost", runE2},
		{"E3", "Table 3: application slowdown under tracing", runE3},
		{"E4", "Figure 4: overhead vs SPE trace-buffer size (single vs double buffered)", runE4},
		{"E5", "Figure 5: load imbalance, static vs dynamic Julia partitioning", runE5},
		{"E6", "Figure 6: DMA stall breakdown, single vs double buffered matmul", runE6},
		{"E7", "Figure 7: pipeline bottleneck, per-stage wait breakdown", runE7},
		{"E8", "Table 4: trace volume per workload", runE8},
		{"E9", "Figure 8: overhead vs event rate", runE9},
		{"E10", "Table 5: analyzer throughput", runE10},
		{"E11", "Table 6 (ablation): memory/EIB bandwidth vs STREAM triad", runE11},
		{"E12", "Table 7 (ablation): barrier latency, atomic vs signal fabric", runE12},
		{"E13", "Figure 9: workload speedup vs SPE count", runE13},
		{"E14", "Table 8: PDT overhead attribution via trace differencing", runE14},
		{"E15", "Table 9: per-cycle variance across the iterative workloads", runE15},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// cyclesToMs converts simulated cycles to milliseconds at the nominal
// 3.2 GHz clock.
func cyclesToMs(c uint64) float64 { return float64(c) / float64(core.NominalClockHz) * 1e3 }

// cyclesToNs converts simulated cycles to nanoseconds.
func cyclesToNs(c float64) float64 { return c / float64(core.NominalClockHz) * 1e9 }

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// ---------------------------------------------------------------- E1 ----

func runE1(w io.Writer, quick bool) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "event\tgroup\tkind\targs\trecord bytes")
	kinds := map[event.Kind]string{event.KindPoint: "point", event.KindEnter: "enter", event.KindExit: "exit"}
	for _, info := range event.All() {
		r := event.Record{ID: info.ID, Args: make([]uint64, len(info.Args))}
		args := ""
		for i, a := range info.Args {
			if i > 0 {
				args += ","
			}
			args += a
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\n", info.Name, info.Group, kinds[info.Kind], args, r.EncodedSize())
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- E2 ----

// runE2 measures the effective cost of tracing one occurrence of each
// operation class: the same SPE loop runs untraced and fully traced, and
// the cycle delta is divided by the iteration count.
func runE2(w io.Writer, quick bool) error {
	iters := 2000
	if quick {
		iters = 200
	}
	type op struct {
		name    string
		params  map[string]string
		records int // trace records per iteration on the SPE
	}
	// The synthetic workload emits exactly one user event per iteration;
	// the other classes are exercised through mini-workload params.
	ops := []op{
		{"user event", map[string]string{"events": fmt.Sprint(iters), "gap": "500"}, 1},
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "operation\trecords/op\tcycles/op untraced\tcycles/op traced\tdelta cycles\tdelta ns")
	for _, o := range ops {
		base, err := Run(Spec{Workload: "synthetic", Params: o.params})
		if err != nil {
			return err
		}
		cfg := core.DefaultTraceConfig()
		traced, err := Run(Spec{Workload: "synthetic", Params: o.params, Trace: &cfg})
		if err != nil {
			return err
		}
		perIterBase := float64(base.Cycles) / float64(iters)
		perIterTraced := float64(traced.Cycles) / float64(iters)
		delta := perIterTraced - perIterBase
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.1f\n",
			o.name, o.records, perIterBase, perIterTraced, delta, cyclesToNs(delta))
	}
	// API-call classes, measured with dedicated mini programs.
	if err := tw.Flush(); err != nil {
		return err
	}
	return runE2APIOps(w, iters)
}

// runE2APIOps times individual instrumented API calls via the matmul/
// histogram communication paths and prints the configured model costs for
// reference.
func runE2APIOps(w io.Writer, iters int) error {
	cfg := core.DefaultTraceConfig()
	tw := newTab(w)
	fmt.Fprintln(tw, "\nconfigured instrumentation cost\tcycles\tns")
	fmt.Fprintf(tw, "SPE event record\t%d\t%.1f\n", cfg.SPEEventCost, cyclesToNs(float64(cfg.SPEEventCost)))
	fmt.Fprintf(tw, "PPE event record\t%d\t%.1f\n", cfg.PPEEventCost, cyclesToNs(float64(cfg.PPEEventCost)))
	fmt.Fprintf(tw, "records per DMA get+wait\t3\t%.1f\n", cyclesToNs(float64(3*cfg.SPEEventCost)))
	fmt.Fprintf(tw, "records per mailbox write+read pair\t4\t%.1f\n", cyclesToNs(float64(2*cfg.SPEEventCost+2*cfg.PPEEventCost)))
	_ = iters
	return tw.Flush()
}

// ---------------------------------------------------------------- E3 ----

// traceLevels are the cumulative group configurations of Table 3.
func traceLevels() []struct {
	Name   string
	Groups event.Group
} {
	return []struct {
		Name   string
		Groups event.Group
	}{
		{"lifecycle", event.GroupLifecycle},
		{"+mfc", event.GroupLifecycle | event.GroupMFC},
		{"+comm", event.GroupLifecycle | event.GroupMFC | event.GroupMailbox | event.GroupSignal},
		{"+sync", event.GroupLifecycle | event.GroupMFC | event.GroupMailbox | event.GroupSignal | event.GroupAtomic | event.GroupSync},
		{"all", event.GroupAll},
	}
}

// e3Workloads returns the benchmark set and sizes of the overhead table.
func e3Workloads(quick bool) []struct {
	Name   string
	Params map[string]string
} {
	if quick {
		return []struct {
			Name   string
			Params map[string]string
		}{
			{"matmul", map[string]string{"n": "128", "t": "32"}},
			{"julia", map[string]string{"w": "128", "h": "64", "maxiter": "64"}},
		}
	}
	return []struct {
		Name   string
		Params map[string]string
	}{
		{"matmul", map[string]string{"n": "256", "t": "64"}},
		{"fft", map[string]string{"n": "1024", "batches": "48"}},
		{"pipeline", map[string]string{"blocks": "48", "blockbytes": "4096"}},
		{"julia", map[string]string{"w": "512", "h": "256", "maxiter": "200", "mode": "dynamic"}},
		{"histogram", map[string]string{"size": fmt.Sprint(1 << 20)}},
	}
}

func runE3(w io.Writer, quick bool) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tconfig\tcycles\toverhead %\trecords\trecords/ms")
	for _, wl := range e3Workloads(quick) {
		base, err := Run(Spec{Workload: wl.Name, Params: wl.Params})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\tuntraced\t%d\t0.0\t0\t0\n", wl.Name, base.Cycles)
		for _, lvl := range traceLevels() {
			cfg := core.DefaultTraceConfig()
			cfg.Groups = lvl.Groups
			res, err := Run(Spec{Workload: wl.Name, Params: wl.Params, Trace: &cfg})
			if err != nil {
				return err
			}
			recs := res.Stats.SPERecords + res.Stats.PPERecords
			ms := cyclesToMs(res.Cycles)
			rate := 0.0
			if ms > 0 {
				rate = float64(recs) / ms
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%d\t%.0f\n",
				wl.Name, lvl.Name, res.Cycles, Overhead(base.Cycles, res.Cycles), recs, rate)
		}
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- E4 ----

func runE4(w io.Writer, quick bool) error {
	events, gap := 20000, 300
	sizes := []int{1024, 2048, 4096, 8192, 16384, 32768}
	if quick {
		events = 2000
		sizes = []int{1024, 4096, 16384}
	}
	params := map[string]string{"events": fmt.Sprint(events), "gap": fmt.Sprint(gap)}
	base, err := Run(Spec{Workload: "synthetic", Params: params})
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "buffer KiB\tmode\toverhead %\tflushes\tflush cycles\tdropped")
	for _, size := range sizes {
		for _, double := range []bool{false, true} {
			cfg := core.DefaultTraceConfig()
			cfg.SPEBufferSize = size
			cfg.DoubleBuffered = double
			res, err := Run(Spec{Workload: "synthetic", Params: params, Trace: &cfg})
			if err != nil {
				return err
			}
			mode := "single"
			if double {
				mode = "double"
			}
			fmt.Fprintf(tw, "%d\t%s\t%.2f\t%d\t%d\t%d\n",
				size/1024, mode, Overhead(base.Cycles, res.Cycles),
				res.Stats.Flushes, res.Stats.FlushCycles, res.Stats.Dropped)
		}
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- E5 ----

func runE5(w io.Writer, quick bool) error {
	params := map[string]string{"w": "512", "h": "256", "maxiter": "200"}
	if quick {
		params = map[string]string{"w": "128", "h": "64", "maxiter": "64"}
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "mode\tSPE\tbusy ticks\tsync-wait ticks\tutil %")
	var wall [2]uint64
	for i, mode := range []string{"static", "dynamic"} {
		p := map[string]string{"mode": mode}
		for k, v := range params {
			p[k] = v
		}
		cfg := core.DefaultTraceConfig()
		res, err := Run(Spec{Workload: "julia", Params: p, Trace: &cfg})
		if err != nil {
			return err
		}
		wall[i] = res.Cycles
		s := analyzer.Summarize(res.Trace)
		for _, r := range s.Runs {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\n",
				mode, r.Core, r.Busy(), r.StateTicks[analyzer.StateStallSync], 100*r.Utilization())
		}
		fmt.Fprintf(tw, "%s\tall\timbalance %.3f\twall %d cycles\t\n", mode, s.LoadImbalance, res.Cycles)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "dynamic speedup over static: %.2fx\n", float64(wall[0])/float64(wall[1]))
	return nil
}

// ---------------------------------------------------------------- E6 ----

func runE6(w io.Writer, quick bool) error {
	n := "256"
	tiles := []string{"16", "32", "64"} // compute:DMA ratio grows with T
	if quick {
		n = "128"
		tiles = []string{"32"}
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "tile\tbuffers\twall cycles\tcompute ticks\tdma-wait ticks\tdma-wait %\tspeedup")
	for _, t := range tiles {
		var wall [3]uint64
		rows := make([]string, 0, 2)
		for _, buffers := range []string{"1", "2"} {
			p := map[string]string{"n": n, "t": t, "buffers": buffers}
			cfg := core.DefaultTraceConfig()
			cfg.Groups = event.GroupLifecycle | event.GroupMFC // low-perturbation tracing
			res, err := Run(Spec{Workload: "matmul", Params: p, Trace: &cfg})
			if err != nil {
				return err
			}
			s := analyzer.Summarize(res.Trace)
			compute := s.TotalState(analyzer.StateCompute)
			dma := s.TotalState(analyzer.StateStallDMA)
			frac := 0.0
			if compute+dma > 0 {
				frac = 100 * float64(dma) / float64(compute+dma)
			}
			rows = append(rows, fmt.Sprintf("%s\t%s\t%d\t%d\t%d\t%.1f",
				t, buffers, res.Cycles, compute, dma, frac))
			if buffers == "1" {
				wall[1] = res.Cycles
			} else {
				wall[2] = res.Cycles
			}
		}
		speedup := float64(wall[1]) / float64(wall[2])
		fmt.Fprintf(tw, "%s\t\n", rows[0])
		fmt.Fprintf(tw, "%s\t%.2fx\n", rows[1], speedup)
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- E7 ----

func runE7(w io.Writer, quick bool) error {
	params := map[string]string{"blocks": "48", "blockbytes": "4096", "slowstage": "3", "slowfactor": "12"}
	if quick {
		params = map[string]string{"blocks": "16", "blockbytes": "1024", "slowstage": "2", "slowfactor": "8", "stages": "4"}
	}
	cfg := core.DefaultTraceConfig()
	res, err := Run(Spec{Workload: "pipeline", Params: params, Trace: &cfg})
	if err != nil {
		return err
	}
	s := analyzer.Summarize(res.Trace)
	tw := newTab(w)
	fmt.Fprintln(tw, "stage\tbusy ticks\tsync-wait ticks\tmbox-wait ticks\tdma-wait ticks\tutil %")
	for _, r := range s.Runs {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.1f\n",
			r.Core, r.Busy(), r.StateTicks[analyzer.StateStallSync],
			r.StateTicks[analyzer.StateStallMbox], r.StateTicks[analyzer.StateStallDMA],
			100*r.Utilization())
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- E8 ----

func runE8(w io.Writer, quick bool) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\trecords\ttrace bytes\tbytes/record\trecords/ms\tflush bytes")
	for _, wl := range e3Workloads(quick) {
		cfg := core.DefaultTraceConfig()
		res, err := Run(Spec{Workload: wl.Name, Params: wl.Params, Trace: &cfg})
		if err != nil {
			return err
		}
		recs := res.Stats.SPERecords + res.Stats.PPERecords
		ms := cyclesToMs(res.Cycles)
		rate := 0.0
		if ms > 0 {
			rate = float64(recs) / ms
		}
		bpr := 0.0
		if recs > 0 {
			bpr = float64(len(res.TraceBytes)) / float64(recs)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.0f\t%d\n",
			wl.Name, recs, len(res.TraceBytes), bpr, rate, res.Stats.FlushBytes)
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- E9 ----

func runE9(w io.Writer, quick bool) error {
	gaps := []int{100, 300, 1000, 3000, 10000, 30000}
	events := 10000
	if quick {
		gaps = []int{300, 3000, 30000}
		events = 1000
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "gap cycles\tevents/ms (sim)\toverhead %\tflush cycles")
	for _, gap := range gaps {
		params := map[string]string{"events": fmt.Sprint(events), "gap": fmt.Sprint(gap)}
		base, err := Run(Spec{Workload: "synthetic", Params: params})
		if err != nil {
			return err
		}
		cfg := core.DefaultTraceConfig()
		res, err := Run(Spec{Workload: "synthetic", Params: params, Trace: &cfg})
		if err != nil {
			return err
		}
		recs := res.Stats.SPERecords
		ms := cyclesToMs(res.Cycles)
		rate := 0.0
		if ms > 0 {
			rate = float64(recs) / ms
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.2f\t%d\n",
			gap, rate, Overhead(base.Cycles, res.Cycles), res.Stats.FlushCycles)
	}
	return tw.Flush()
}

// --------------------------------------------------------------- E10 ----

func runE10(w io.Writer, quick bool) error {
	events := 50000
	if quick {
		events = 5000
	}
	cfg := core.DefaultTraceConfig()
	res, err := Run(Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": fmt.Sprint(events), "gap": "200"},
		Trace:    &cfg,
	})
	if err != nil {
		return err
	}
	recs := res.Stats.SPERecords + res.Stats.PPERecords

	start := time.Now()
	tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
	if err != nil {
		return err
	}
	loadDur := time.Since(start)
	start = time.Now()
	analyzer.Validate(tr)
	s := analyzer.Summarize(tr)
	analyzeDur := time.Since(start)

	tw := newTab(w)
	fmt.Fprintln(tw, "phase\trecords\thost time\trecords/s")
	fmt.Fprintf(tw, "load+merge\t%d\t%v\t%.0f\n", recs, loadDur, float64(recs)/loadDur.Seconds())
	fmt.Fprintf(tw, "validate+summarize\t%d\t%v\t%.0f\n", recs, analyzeDur, float64(recs)/analyzeDur.Seconds())
	fmt.Fprintf(tw, "trace size\t%d bytes\t%.1f B/record\t\n", len(res.TraceBytes), float64(len(res.TraceBytes))/float64(recs))
	if err := tw.Flush(); err != nil {
		return err
	}
	_ = s
	return nil
}

// --------------------------------------------------------------- E11 ----

// runE11 is the machine-model ablation DESIGN.md commits to: the STREAM
// triad swept over SPE counts and machine bandwidth parameters. Expected
// shape: bandwidth scales with SPEs until the memory interface saturates;
// halving MemBytesPerCycle halves the plateau; EIB rings only matter when
// they are scarcer than concurrent transfers.
func runE11(w io.Writer, quick bool) error {
	elements := 1 << 19
	if quick {
		elements = 1 << 16
	}
	type variant struct {
		name string
		mut  func(*cell.Config)
	}
	variants := []variant{
		{"baseline (8B/c mem, 4 rings)", nil},
		{"half memory bw (4B/c)", func(c *cell.Config) { c.MemBytesPerCycle = 4 }},
		{"single EIB ring", func(c *cell.Config) { c.EIBRings = 1 }},
	}
	spes := []int{1, 2, 4, 8}
	if quick {
		spes = []int{1, 8}
		variants = variants[:2]
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "machine\tSPEs\tcycles\tGB/s")
	for _, v := range variants {
		for _, n := range spes {
			res, err := Run(Spec{
				Workload:   "stream",
				Params:     map[string]string{"elements": fmt.Sprint(elements)},
				NumSPEs:    n,
				MachineMut: v.mut,
			})
			if err != nil {
				return err
			}
			bytes := float64(elements) * 12
			seconds := float64(res.Cycles) / float64(core.NominalClockHz)
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\n", v.name, n, res.Cycles, bytes/seconds/1e9)
		}
	}
	return tw.Flush()
}
