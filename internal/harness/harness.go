// Package harness orchestrates complete runs for the CLIs, examples and
// benchmarks: build a machine, optionally attach a PDT session, prepare a
// workload, simulate, verify, and collect the trace and its analysis.
package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/faults"
	"github.com/celltrace/pdt/internal/sim"
	"github.com/celltrace/pdt/internal/workloads"
)

// Spec describes one run.
type Spec struct {
	Workload string
	Params   map[string]string
	// NumSPEs overrides the machine SPE count when positive.
	NumSPEs int
	// MemMiB sizes simulated memory (default 64).
	MemMiB int
	// MachineMut, when non-nil, adjusts the machine configuration after
	// defaults and NumSPEs/MemMiB are applied (used by the machine-
	// parameter ablation experiments).
	MachineMut func(*cell.Config)
	// Trace, when non-nil, attaches a PDT session with this config.
	Trace *core.Config
	// TracePath, when non-empty, also writes the trace file there.
	TracePath string
	// LivePath, when non-empty, mirrors the trace onto this file while
	// the simulation runs (live-tail): header and metadata up front,
	// then a chunk per completed flush DMA. The stream is sealed with a
	// footer on clean completion and left truncated after a crash,
	// exactly the shape a dying writer leaves. Requires Trace.
	LivePath string
	// SkipVerify skips result verification (overhead sweeps that run
	// many configurations use it to save host time, never correctness
	// tests).
	SkipVerify bool
	// Faults, when non-nil and non-empty, injects the planned faults:
	// machine crash, flush-DMA stalls and failures, and post-hoc trace
	// corruption. Damaged traces are loaded through the salvage path.
	Faults *faults.Plan
}

// Result is what a run produced.
type Result struct {
	// Cycles is the simulated end time of the run.
	Cycles uint64
	// Machine is the finished machine (stats remain readable).
	Machine *cell.Machine
	// Stats holds tracing-side counters (zero value when untraced).
	Stats core.Stats
	// TraceBytes is the serialized trace (nil when untraced), after any
	// planned corruption was applied.
	TraceBytes []byte
	// Trace is the loaded trace (nil when untraced).
	Trace *analyzer.Trace
	// Crashed reports that an injected kill stopped the simulation early;
	// TraceBytes then holds a crash-consistent (footerless) trace.
	Crashed bool
	// Salvage is the recovery accounting when the trace had to be loaded
	// through the salvage path (nil for clean traces).
	Salvage *traceio.SalvageReport
	// FaultNotes describes the post-hoc corruption that was applied.
	FaultNotes []string
}

// Run executes a spec.
func Run(spec Spec) (*Result, error) {
	return RunContext(context.Background(), spec)
}

// RunContext executes a spec under cancellation: the simulation engine
// polls ctx between dispatches and the trace load honors it too, so a
// deadline bounds the whole run (simulate → write → analyze). The
// returned error preserves ctx.Err() for errors.Is, letting callers map
// a wall-clock timeout to a distinct exit status.
func RunContext(ctx context.Context, spec Spec) (*Result, error) {
	w, err := workloads.New(spec.Workload)
	if err != nil {
		return nil, err
	}
	if err := w.Configure(spec.Params); err != nil {
		return nil, err
	}
	mc := cell.DefaultConfig()
	if spec.NumSPEs > 0 {
		mc.NumSPEs = spec.NumSPEs
	}
	mc.MemSize = 64 * cell.MiB
	if spec.MemMiB > 0 {
		mc.MemSize = spec.MemMiB * cell.MiB
	}
	if spec.MachineMut != nil {
		spec.MachineMut(&mc)
	}
	m := cell.NewMachine(mc)

	plan := spec.Faults
	if kill, ok := plan.Kill(); ok {
		m.CrashAt(kill)
	}

	if spec.LivePath != "" && spec.Trace == nil {
		return nil, errors.New("harness: LivePath requires tracing (Trace config)")
	}
	var session *core.Session
	var liveFile *os.File
	if spec.Trace != nil {
		cfg := *spec.Trace
		cfg.Workload = spec.Workload
		cfg.Params = w.Params()
		session = core.NewSession(m, cfg)
		session.Attach()
		if spec.LivePath != "" {
			lf, err := os.Create(spec.LivePath)
			if err != nil {
				return nil, err
			}
			defer lf.Close()
			if err := session.AttachLive(lf); err != nil {
				return nil, err
			}
			liveFile = lf
		}
		if !plan.Empty() {
			// Stalls target only the DMA tags the tracer flushes on;
			// workload transfers are left alone.
			m.DMAStall = func(spe, tag int, now uint64) uint64 {
				if tag != cfg.FlushTagA && tag != cfg.FlushTagB {
					return 0
				}
				return plan.FlushStall(spe, now)
			}
			session.InjectFlushFailures(plan.FlushFail)
		}
	}
	if err := w.Prepare(m); err != nil {
		return nil, err
	}
	crashed := false
	if err := m.RunContext(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("harness: simulation interrupted: %w", err)
		}
		if _, killed := plan.Kill(); !errors.Is(err, sim.ErrStopped) || !killed {
			return nil, fmt.Errorf("harness: simulation: %w", err)
		}
		crashed = true
	}
	if !spec.SkipVerify && !crashed {
		if err := w.Verify(m); err != nil {
			return nil, fmt.Errorf("harness: verification: %w", err)
		}
	}
	if liveFile != nil && !crashed {
		// Seal the live stream; a crash leaves it truncated, footerless,
		// exactly as a real dying writer would.
		if err := session.CloseLive(); err != nil {
			return nil, fmt.Errorf("harness: live stream: %w", err)
		}
	}
	res := &Result{Cycles: m.Now(), Machine: m, Crashed: crashed}
	if session != nil {
		res.Stats = session.Stats()
		var buf bytes.Buffer
		var werr error
		if crashed {
			werr = session.WriteCrashTrace(&buf)
		} else {
			werr = session.WriteTrace(&buf)
		}
		if werr != nil {
			return nil, werr
		}
		res.TraceBytes, res.FaultNotes = plan.MangleTrace(buf.Bytes())
		if spec.TracePath != "" {
			if err := os.WriteFile(spec.TracePath, res.TraceBytes, 0o644); err != nil {
				return nil, err
			}
		}
		if crashed || len(res.FaultNotes) > 0 {
			// The trace is damaged by construction; load it the way
			// `pdt-ta doctor` would.
			f, rep, err := traceio.SalvageContext(ctx, res.TraceBytes)
			if err != nil {
				return nil, fmt.Errorf("harness: trace unrecoverable: %w", err)
			}
			tr, err := analyzer.FromSalvagedContext(ctx, f, rep, analyzer.Limits{})
			if err != nil {
				return nil, err
			}
			res.Trace = tr
			res.Salvage = rep
		} else {
			tr, err := analyzer.LoadContext(ctx, bytes.NewReader(res.TraceBytes), analyzer.Limits{})
			if err != nil {
				return nil, err
			}
			res.Trace = tr
		}
	}
	return res, nil
}

// Overhead returns (traced-untraced)/untraced as a percentage.
func Overhead(untraced, traced uint64) float64 {
	if untraced == 0 {
		return 0
	}
	return 100 * (float64(traced) - float64(untraced)) / float64(untraced)
}
