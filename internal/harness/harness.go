// Package harness orchestrates complete runs for the CLIs, examples and
// benchmarks: build a machine, optionally attach a PDT session, prepare a
// workload, simulate, verify, and collect the trace and its analysis.
package harness

import (
	"bytes"
	"fmt"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/workloads"
)

// Spec describes one run.
type Spec struct {
	Workload string
	Params   map[string]string
	// NumSPEs overrides the machine SPE count when positive.
	NumSPEs int
	// MemMiB sizes simulated memory (default 64).
	MemMiB int
	// MachineMut, when non-nil, adjusts the machine configuration after
	// defaults and NumSPEs/MemMiB are applied (used by the machine-
	// parameter ablation experiments).
	MachineMut func(*cell.Config)
	// Trace, when non-nil, attaches a PDT session with this config.
	Trace *core.Config
	// TracePath, when non-empty, also writes the trace file there.
	TracePath string
	// SkipVerify skips result verification (overhead sweeps that run
	// many configurations use it to save host time, never correctness
	// tests).
	SkipVerify bool
}

// Result is what a run produced.
type Result struct {
	// Cycles is the simulated end time of the run.
	Cycles uint64
	// Machine is the finished machine (stats remain readable).
	Machine *cell.Machine
	// Stats holds tracing-side counters (zero value when untraced).
	Stats core.Stats
	// TraceBytes is the serialized trace (nil when untraced).
	TraceBytes []byte
	// Trace is the loaded trace (nil when untraced).
	Trace *analyzer.Trace
}

// Run executes a spec.
func Run(spec Spec) (*Result, error) {
	w, err := workloads.New(spec.Workload)
	if err != nil {
		return nil, err
	}
	if err := w.Configure(spec.Params); err != nil {
		return nil, err
	}
	mc := cell.DefaultConfig()
	if spec.NumSPEs > 0 {
		mc.NumSPEs = spec.NumSPEs
	}
	mc.MemSize = 64 * cell.MiB
	if spec.MemMiB > 0 {
		mc.MemSize = spec.MemMiB * cell.MiB
	}
	if spec.MachineMut != nil {
		spec.MachineMut(&mc)
	}
	m := cell.NewMachine(mc)

	var session *core.Session
	if spec.Trace != nil {
		cfg := *spec.Trace
		cfg.Workload = spec.Workload
		cfg.Params = w.Params()
		session = core.NewSession(m, cfg)
		session.Attach()
	}
	if err := w.Prepare(m); err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("harness: simulation: %w", err)
	}
	if !spec.SkipVerify {
		if err := w.Verify(m); err != nil {
			return nil, fmt.Errorf("harness: verification: %w", err)
		}
	}
	res := &Result{Cycles: m.Now(), Machine: m}
	if session != nil {
		res.Stats = session.Stats()
		var buf bytes.Buffer
		if err := session.WriteTrace(&buf); err != nil {
			return nil, err
		}
		res.TraceBytes = buf.Bytes()
		if spec.TracePath != "" {
			if err := session.WriteFile(spec.TracePath); err != nil {
				return nil, err
			}
		}
		tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
		if err != nil {
			return nil, err
		}
		res.Trace = tr
	}
	return res, nil
}

// Overhead returns (traced-untraced)/untraced as a percentage.
func Overhead(untraced, traced uint64) float64 {
	if untraced == 0 {
		return 0
	}
	return 100 * (float64(traced) - float64(untraced)) / float64(untraced)
}
