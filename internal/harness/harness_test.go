package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/core"
)

func TestRunUntraced(t *testing.T) {
	res, err := Run(Spec{Workload: "julia", Params: map[string]string{"w": "64", "h": "32", "maxiter": "32"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Trace != nil || res.TraceBytes != nil {
		t.Fatalf("untraced result wrong: %+v", res)
	}
}

func TestRunTracedWithFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.pdt")
	cfg := core.DefaultTraceConfig()
	res, err := Run(Spec{
		Workload:  "histogram",
		Params:    map[string]string{"size": "65536"},
		Trace:     &cfg,
		TracePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Stats.SPERecords == 0 {
		t.Fatal("traced run missing trace")
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, res.TraceBytes) {
		t.Fatal("file and in-memory trace differ")
	}
	if res.Trace.Meta.Workload != "histogram" {
		t.Fatalf("meta workload = %q", res.Trace.Meta.Workload)
	}
	// Params recorded for reproducibility.
	found := false
	for _, p := range res.Trace.Meta.Params {
		if p.Name == "size" && p.Value == "65536" {
			found = true
		}
	}
	if !found {
		t.Fatalf("params not recorded: %+v", res.Trace.Meta.Params)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Spec{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(Spec{Workload: "matmul", Params: map[string]string{"n": "billion"}}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestRunNumSPEsOverride(t *testing.T) {
	res, err := Run(Spec{
		Workload: "julia",
		Params:   map[string]string{"w": "64", "h": "32", "maxiter": "32"},
		NumSPEs:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.NumSPEs() != 2 {
		t.Fatalf("SPEs = %d", res.Machine.NumSPEs())
	}
}

func TestOverhead(t *testing.T) {
	if v := Overhead(100, 110); v != 10 {
		t.Fatalf("Overhead = %v", v)
	}
	if v := Overhead(0, 10); v != 0 {
		t.Fatalf("Overhead zero-base = %v", v)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("experiments = %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
	if _, ok := ByID("E5"); !ok {
		t.Fatal("ByID(E5) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) succeeded")
	}
}

// Run every experiment in quick mode and sanity-check the output shape.
func TestAllExperimentsQuick(t *testing.T) {
	want := map[string][]string{
		"E1":  {"SPE_MFC_GET", "record bytes"},
		"E2":  {"delta ns", "user event"},
		"E3":  {"untraced", "all", "overhead"},
		"E4":  {"single", "double", "flushes"},
		"E5":  {"static", "dynamic", "imbalance"},
		"E6":  {"dma-wait", "speedup"},
		"E7":  {"stage", "sync-wait"},
		"E8":  {"bytes/record", "records/ms"},
		"E9":  {"gap cycles", "overhead"},
		"E10": {"records/s", "load+merge"},
		"E11": {"GB/s", "baseline"},
		"E12": {"parties", "signal speedup"},
		"E13": {"speedup", "julia"},
		"E15": {"wall CV%", "pipeline", "stream", "steady%"},
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			for _, needle := range want[e.ID] {
				if !strings.Contains(out, needle) {
					t.Fatalf("%s output missing %q:\n%s", e.ID, needle, out)
				}
			}
		})
	}
}
