package harness

import (
	"bytes"
	"fmt"
	"io"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/diff"
	"github.com/celltrace/pdt/internal/core"
)

// e14Workloads is the benchmark set for the differencing experiment:
// three workloads with distinct communication profiles (DMA-bound tiles,
// dynamically balanced compute, mailbox-driven stages).
func e14Workloads(quick bool) []struct {
	Name   string
	Params map[string]string
} {
	if quick {
		return []struct {
			Name   string
			Params map[string]string
		}{
			{"matmul", map[string]string{"n": "128", "t": "32"}},
			{"julia", map[string]string{"w": "128", "h": "64", "maxiter": "64", "mode": "dynamic"}},
			{"pipeline", map[string]string{"blocks": "16", "blockbytes": "1024"}},
		}
	}
	return []struct {
		Name   string
		Params map[string]string
	}{
		{"matmul", map[string]string{"n": "256", "t": "64"}},
		{"julia", map[string]string{"w": "512", "h": "256", "maxiter": "200", "mode": "dynamic"}},
		{"pipeline", map[string]string{"blocks": "48", "blockbytes": "4096"}},
	}
}

// e14BufferSize keeps the SPE trace buffer small enough that higher
// event-group configurations overflow it. Combined with single
// buffering (each flush stalls on its own DMA), flush time becomes
// visible in the trace and the attribution's flush row is exercised,
// not just the per-record estimate.
const e14BufferSize = 2048

// runE14 measures PDT's own overhead by differencing: each workload runs
// once per cumulative event-group configuration, and every richer run is
// diffed against the lifecycle-only baseline with the diff engine. The
// attribution column splits the wall-clock delta into trace-buffer
// flushes, per-record instrumentation cost, and an unattributed residual
// (perturbation the two models don't explain); critpath shows how much of
// the delta lands on the critical path.
func runE14(w io.Writer, quick bool) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tconfig\trecords Δ\twall Δ\tflush attr\trecord attr\tticks/record\tresidual\tcritpath Δ")
	for _, wl := range e14Workloads(quick) {
		var base *analyzer.Trace
		for i, lvl := range traceLevels() {
			cfg := core.DefaultTraceConfig()
			cfg.Groups = lvl.Groups
			cfg.SPEBufferSize = e14BufferSize
			cfg.DoubleBuffered = false
			res, err := Run(Spec{Workload: wl.Name, Params: wl.Params, Trace: &cfg})
			if err != nil {
				return err
			}
			tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
			if err != nil {
				return err
			}
			if i == 0 {
				base = tr
				fmt.Fprintf(tw, "%s\t%s\t(baseline: %d records, %d ticks)\t\t\t\t\t\t\n",
					wl.Name, lvl.Name, tr.NumEvents(), wallTicks(tr))
				continue
			}
			rep, err := diff.Diff(base, tr, diff.Options{})
			if err != nil {
				return err
			}
			o := rep.Overhead
			perRec := ""
			if o.RecordDelta != 0 && o.RecordAttributed != 0 {
				perRec = fmt.Sprintf("%.2f", o.PerRecordTicks)
			}
			fmt.Fprintf(tw, "%s\t%s\t%+d\t%+d\t%+d\t%+d\t%s\t%+d\t%+d\n",
				wl.Name, lvl.Name, rep.RecordDelta(), o.WallDeltaTicks,
				o.FlushAttributed, o.RecordAttributed, perRec, o.ResidualTicks,
				rep.CritPath.Delta())
		}
	}
	return tw.Flush()
}

// wallTicks is the span of one trace in ticks.
func wallTicks(tr *analyzer.Trace) uint64 {
	first, last := tr.Span()
	return last - first
}
