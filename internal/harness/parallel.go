package harness

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

// RunExperiments regenerates the given experiments, writing each report
// to w in experiment order under its "==== ID: Title ====" banner. With
// workers > 1 the independent table regenerations run concurrently, each
// into its own buffer (every experiment builds its own machines, so runs
// do not share state); the output is flushed in experiment order as soon
// as each report is complete, byte-identical to a serial run. The first
// failing experiment (in experiment order) is returned after all
// in-flight work has drained.
func RunExperiments(w io.Writer, exps []Experiment, quick bool, workers int) error {
	if workers < 1 {
		workers = 1
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	type report struct {
		buf  bytes.Buffer
		err  error
		done chan struct{}
	}
	reports := make([]*report, len(exps))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range exps {
		reports[i] = &report{done: make(chan struct{})}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem; close(reports[i].done) }()
			e := exps[i]
			r := reports[i]
			fmt.Fprintf(&r.buf, "==== %s: %s ====\n", e.ID, e.Title)
			if err := e.Run(&r.buf, quick); err != nil {
				r.err = fmt.Errorf("%s: %w", e.ID, err)
				return
			}
			fmt.Fprintln(&r.buf)
		}(i)
	}
	var firstErr error
	for _, r := range reports {
		<-r.done
		if firstErr != nil {
			continue // drain remaining work, report the earliest failure
		}
		if r.err != nil {
			firstErr = r.err
			continue
		}
		if _, err := w.Write(r.buf.Bytes()); err != nil {
			firstErr = err
		}
	}
	wg.Wait()
	return firstErr
}
