package harness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// fakeExperiments builds deterministic experiments whose reports expose
// the writer interleaving.
func fakeExperiments(n int, failAt int) []Experiment {
	exps := make([]Experiment, n)
	for i := range exps {
		i := i
		exps[i] = Experiment{
			ID:    fmt.Sprintf("X%d", i+1),
			Title: fmt.Sprintf("fake table %d", i+1),
			Run: func(w io.Writer, quick bool) error {
				if i == failAt {
					return errors.New("boom")
				}
				fmt.Fprintf(w, "row %d quick=%v\n", i+1, quick)
				return nil
			},
		}
	}
	return exps
}

// TestRunExperimentsParallelMatchesSerial checks the concurrent runner
// produces byte-identical output to the serial one, in experiment order.
func TestRunExperimentsParallelMatchesSerial(t *testing.T) {
	exps := fakeExperiments(7, -1)
	var serial, parallel bytes.Buffer
	if err := RunExperiments(&serial, exps, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := RunExperiments(&parallel, exps, true, 4); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("outputs differ:\nserial:\n%s\nparallel:\n%s", serial.String(), parallel.String())
	}
	if !strings.Contains(serial.String(), "==== X1: fake table 1 ====") {
		t.Fatalf("banner missing:\n%s", serial.String())
	}
	if strings.Index(serial.String(), "row 7") < strings.Index(serial.String(), "row 1") {
		t.Fatal("experiment order not preserved")
	}
}

// TestRunExperimentsError checks the earliest failing experiment wins
// and later reports are suppressed, matching serial semantics.
func TestRunExperimentsError(t *testing.T) {
	exps := fakeExperiments(5, 2)
	for _, workers := range []int{1, 3} {
		var out bytes.Buffer
		err := RunExperiments(&out, exps, false, workers)
		if err == nil || !strings.Contains(err.Error(), "X3") {
			t.Fatalf("workers=%d: want X3 failure, got %v", workers, err)
		}
		if strings.Contains(out.String(), "row 4") {
			t.Fatalf("workers=%d: output after failure leaked:\n%s", workers, out.String())
		}
		if !strings.Contains(out.String(), "row 2") {
			t.Fatalf("workers=%d: output before failure missing:\n%s", workers, out.String())
		}
	}
}

// TestRunExperimentsConcurrentReal runs two real (quick) experiments
// concurrently — the machines and sessions an experiment builds must be
// fully independent; go test -race guards the claim.
func TestRunExperimentsConcurrentReal(t *testing.T) {
	e1, ok1 := ByID("E1")
	e5, ok5 := ByID("E5")
	if !ok1 || !ok5 {
		t.Fatal("experiments missing")
	}
	exps := []Experiment{e1, e5}
	var serial, parallel bytes.Buffer
	if err := RunExperiments(&serial, exps, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := RunExperiments(&parallel, exps, true, 2); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatal("parallel experiment regeneration not deterministic")
	}
}
