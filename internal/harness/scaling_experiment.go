package harness

import (
	"fmt"
	"io"
)

// runE13 produces the SPE-scaling figure: speedup over one SPE for
// representative workloads as SPEs are added. Expected shape: the
// compute-bound fractal scales near-linearly, the blocked matmul scales
// until memory bandwidth intrudes, and the PPE-merged sort saturates
// early because its serial merge grows with the run count (Amdahl).
func runE13(w io.Writer, quick bool) error {
	type wl struct {
		name   string
		params map[string]string
	}
	wls := []wl{
		{"julia", map[string]string{"w": "512", "h": "256", "maxiter": "200", "mode": "dynamic"}},
		{"matmul", map[string]string{"n": "256", "t": "64"}},
		{"sort", map[string]string{"elements": fmt.Sprint(1 << 17), "chunk": "4096"}},
	}
	spes := []int{1, 2, 4, 8}
	if quick {
		wls = wls[:1]
		wls[0].params = map[string]string{"w": "128", "h": "64", "maxiter": "64", "mode": "dynamic"}
		spes = []int{1, 4}
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tSPEs\tcycles\tspeedup vs 1")
	for _, wl := range wls {
		var base uint64
		for _, n := range spes {
			res, err := Run(Spec{Workload: wl.name, Params: wl.params, NumSPEs: n})
			if err != nil {
				return err
			}
			if n == spes[0] {
				base = res.Cycles
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.2fx\n", wl.name, n, res.Cycles,
				float64(base)/float64(res.Cycles))
		}
	}
	return tw.Flush()
}
