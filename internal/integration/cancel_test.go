package integration

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/harness"
)

// TestCancelLatencyOnBenchmarkTrace is the acceptance check for load
// cancellation: on the multi-MiB synthetic trace BenchmarkLoadLargeTrace
// uses, a cancel landing mid-pipeline must surface ctx.Err() within
// 100 ms, leaving zero pipeline goroutines behind. Under -short the
// trace shrinks with the same shape.
func TestCancelLatencyOnBenchmarkTrace(t *testing.T) {
	events := 20000
	if testing.Short() {
		events = 2000
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": fmt.Sprint(events), "gap": "100"},
		Trace:    &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := traceio.Parse(res.TraceBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("trace: %d bytes, %d chunks", len(res.TraceBytes), len(f.Chunks))

	baseline := runtime.NumGoroutine()
	cancelled := 0
	for trial := 0; trial < 20; trial++ {
		// Spread cancels across the load's lifetime: the full load takes
		// tens of milliseconds, so microsecond-to-millisecond delays land
		// in decode, merge, and indexing.
		delay := time.Duration(trial) * 700 * time.Microsecond
		ctx, cancel := context.WithCancel(context.Background())
		fired := make(chan time.Time, 1)
		go func() {
			time.Sleep(delay)
			fired <- time.Now()
			cancel()
		}()
		_, err := analyzer.FromFileContext(ctx, f, analyzer.Limits{})
		ret := time.Now()
		cancel()
		if err == nil {
			continue // load beat the cancel; nothing to measure
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
		cancelled++
		if lat := ret.Sub(<-fired); lat > 100*time.Millisecond {
			t.Fatalf("trial %d: cancel-to-return latency %v exceeds 100ms", trial, lat)
		}
	}
	if cancelled == 0 {
		t.Skip("every load completed before its cancel; latency not exercised on this host")
	}
	t.Logf("%d/20 trials cancelled mid-load", cancelled)

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
