package integration

// Disk-fault sweep over the durable tier: every service-level fault the
// chaos grammar can inject (disk-full, slow-disk, torn-write) plus
// on-disk corruption is driven through the full cache + job stack, and
// in every case the caller-visible result must be correct bytes — the
// faults may cost performance or durability, never answers.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cache"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/faults"
	"github.com/celltrace/pdt/internal/harness"
	"github.com/celltrace/pdt/internal/jobs"
)

func chaosTrace(t *testing.T, events int) []byte {
	t.Helper()
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": fmt.Sprint(events), "gap": "100"},
		Trace:    &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.TraceBytes
}

// TestChaosDiskFaultSweep: for each injected fault plan, every analysis
// kind must still return bytes identical to a fault-free run.
func TestChaosDiskFaultSweep(t *testing.T) {
	data := chaosTrace(t, 2000)
	ctx := context.Background()

	// Fault-free baseline, memory-only.
	baseline := map[string][]byte{}
	cleanCache := cache.New(0, 0)
	for _, kind := range cache.AnalysisKinds {
		b, err := cleanCache.Artifact(ctx, data, kind, analyzer.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		baseline[kind] = b
	}

	plans := []string{
		"diskfull:0:*", // every tier write fails
		"diskfull:2",   // tier fills after two writes, then recovers
		"torn:1", "torn:3:1",
		"slowdisk:1",
		"diskfull:1,slowdisk:1", // compound
	}
	for _, spec := range plans {
		t.Run(spec, func(t *testing.T) {
			plan, err := faults.ParseService(spec)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			tier, err := cache.OpenDiskTier(dir, 0, plan)
			if err != nil {
				t.Fatal(err)
			}
			c := cache.New(0, 0)
			c.AttachDisk(tier)
			for round := 0; round < 2; round++ {
				for _, kind := range cache.AnalysisKinds {
					b, err := c.Artifact(ctx, data, kind, analyzer.Limits{})
					if err != nil {
						t.Fatalf("round %d %s under %q: %v", round, kind, spec, err)
					}
					if !bytes.Equal(b, baseline[kind]) {
						t.Fatalf("round %d %s under %q: wrong bytes", round, kind, spec)
					}
				}
			}
			// Whatever did land on disk must serve a clean reopen
			// byte-identically too (or recompute transparently).
			tier2, err := cache.OpenDiskTier(dir, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			c2 := cache.New(0, 0)
			c2.AttachDisk(tier2)
			for _, kind := range cache.AnalysisKinds {
				b, err := c2.Artifact(ctx, data, kind, analyzer.Limits{})
				if err != nil {
					t.Fatalf("reopen %s after %q: %v", kind, spec, err)
				}
				if !bytes.Equal(b, baseline[kind]) {
					t.Fatalf("reopen %s after %q: wrong bytes", kind, spec)
				}
			}
		})
	}
}

// TestChaosScribbleSweep corrupts every object the disk tier persisted
// — one at a time, several scribble patterns — and demands the tiers
// recompute the right answer instead of serving or propagating damage.
func TestChaosScribbleSweep(t *testing.T) {
	data := chaosTrace(t, 1500)
	ctx := context.Background()

	dir := t.TempDir()
	tier, err := cache.OpenDiskTier(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(0, 0)
	c.AttachDisk(tier)
	baseline := map[string][]byte{}
	for _, kind := range cache.AnalysisKinds {
		b, err := c.Artifact(ctx, data, kind, analyzer.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		baseline[kind] = b
	}

	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no persisted objects to scribble on (%v)", err)
	}
	scribbles := []func([]byte) []byte{
		func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b }, // payload flip
		func(b []byte) []byte { return b[:len(b)/2] },           // truncate
		func(b []byte) []byte { b[0] ^= 0x01; return b },        // magic flip
		func(b []byte) []byte { return append(b, 0xde, 0xad) },  // trailing junk
	}
	for _, name := range names {
		for si, scribble := range scribbles {
			pristine, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			damaged := scribble(append([]byte(nil), pristine...))
			if err := os.WriteFile(name, damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			// Fresh process over the damaged directory.
			tier2, err := cache.OpenDiskTier(dir, 0, nil)
			if err != nil {
				t.Fatalf("open over scribbled %s: %v", filepath.Base(name), err)
			}
			c2 := cache.New(0, 0)
			c2.AttachDisk(tier2)
			for _, kind := range cache.AnalysisKinds {
				b, err := c2.Artifact(ctx, data, kind, analyzer.Limits{})
				if err != nil {
					t.Fatalf("scribble %d on %s, kind %s: %v", si, filepath.Base(name), kind, err)
				}
				if !bytes.Equal(b, baseline[kind]) {
					t.Fatalf("scribble %d on %s, kind %s: wrong bytes served", si, filepath.Base(name), kind)
				}
			}
			// Restore for the next pattern.
			if err := os.WriteFile(name, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestChaosJobKillMatrixConverges drives the job manager (no HTTP)
// through a kill at every phase with the real analyzer underneath,
// asserting byte-level convergence of the journaled result CRC.
func TestChaosJobKillMatrixConverges(t *testing.T) {
	data := chaosTrace(t, 1500)
	ctx := context.Background()

	// Uninterrupted baseline through the same tiered stack.
	cleanDir := t.TempDir()
	cleanTier, err := cache.OpenDiskTier(cleanDir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanCache := cache.New(0, 0)
	cleanCache.AttachDisk(cleanTier)
	want, err := cleanCache.Artifact(ctx, data, cache.KindCritPath, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	for _, phase := range faults.JobPhases {
		if phase == jobs.PhaseWebhook {
			continue // no webhook in this matrix; the HTTP-level test covers it
		}
		t.Run(phase, func(t *testing.T) {
			dir := t.TempDir()
			tier, err := cache.OpenDiskTier(filepath.Join(dir, "objects"), 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			c := cache.New(0, 0)
			c.AttachDisk(tier)
			key := cache.KeyOf(data)
			if err := tier.Put(key, cache.KindTrace, data); err != nil {
				t.Fatal(err)
			}
			plan, err := faults.ParseService("killphase:" + phase)
			if err != nil {
				t.Fatal(err)
			}
			mkConfig := func(kill bool) jobs.Config {
				cfg := jobs.Config{
					Workers:     1,
					BackoffBase: time.Millisecond,
					BackoffCap:  2 * time.Millisecond,
					Fetch: func(k string) ([]byte, bool) {
						pk, ok := cache.ParseKey(k)
						if !ok {
							return nil, false
						}
						return c.RawImage(pk)
					},
					Exec: func(ctx context.Context, kind string, img []byte) ([]byte, error) {
						return c.Artifact(ctx, img, kind, analyzer.Limits{})
					},
				}
				if kill {
					cfg.PhaseHook = func(id, ph string) error {
						if plan.Kill(ph) {
							return fmt.Errorf("chaos kill at %s", ph)
						}
						return nil
					}
				}
				return cfg
			}

			journalFile := filepath.Join(dir, "jobs.journal")
			j1, recs, st, err := jobs.OpenJournal(journalFile, nil)
			if err != nil {
				t.Fatal(err)
			}
			m1 := jobs.New(j1, recs, st, mkConfig(true))
			m1.Start()
			_, _ = m1.Submit(cache.KindCritPath, key.String(), "")
			deadline := time.Now().Add(5 * time.Second)
			for !m1.Crashed() && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if !m1.Crashed() {
				t.Fatal("kill never fired")
			}
			m1.Stop()
			j1.Close()

			j2, recs, st, err := jobs.OpenJournal(journalFile, nil)
			if err != nil {
				t.Fatal(err)
			}
			m2 := jobs.New(j2, recs, st, mkConfig(false))
			m2.Start()
			defer func() { m2.Stop(); j2.Close() }()
			adopted := m2.Jobs()
			if len(adopted) != 1 {
				t.Fatalf("adopted %d jobs", len(adopted))
			}
			id := adopted[0].ID
			deadline = time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				if jb, ok := m2.Get(id); ok && jb.Status == jobs.StatusDone {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			jb, _ := m2.Get(id)
			if jb.Status != jobs.StatusDone {
				t.Fatalf("replayed job never finished: %+v", jb)
			}
			got, err := c.Artifact(ctx, data, cache.KindCritPath, analyzer.Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("kill at %s: result diverged from uninterrupted run", phase)
			}
		})
	}
}
