package integration

import (
	"fmt"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/faults"
	"github.com/celltrace/pdt/internal/harness"
)

// crashSpec builds the harness spec the crash-kill matrix uses for one
// workload, with or without an injected kill.
func crashSpec(name string, params map[string]string, plan *faults.Plan) harness.Spec {
	cfg := core.DefaultTraceConfig()
	return harness.Spec{
		Workload: name,
		Params:   params,
		Trace:    &cfg,
		Faults:   plan,
	}
}

// eventKey identifies one trace record for the prefix comparison.
func eventKey(e analyzer.Event) string {
	return fmt.Sprintf("%d@%d%v", e.ID, e.Global, e.Args)
}

// perCoreKeys groups the trace's record keys by core, in stream order.
func perCoreKeys(tr *analyzer.Trace) map[uint8][]string {
	out := map[uint8][]string{}
	for _, e := range tr.Events() {
		out[e.Core] = append(out[e.Core], eventKey(e))
	}
	return out
}

// TestCrashKillMatrix kills several workloads at evenly spaced cycles and
// requires that the crash-consistent trace salvages into a Validate-clean
// prefix of the undisturbed run: every surviving record matches the
// baseline, per core, in order, with nothing reordered or invented.
func TestCrashKillMatrix(t *testing.T) {
	matrix := []struct {
		name   string
		params map[string]string
	}{
		{"matmul", map[string]string{"n": "128", "t": "32"}},
		{"pipeline", map[string]string{"blocks": "16"}},
		{"fft", map[string]string{"n": "256", "batches": "8"}},
	}
	const kills = 10
	for _, wl := range matrix {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			t.Parallel()
			base, err := harness.Run(crashSpec(wl.name, wl.params, nil))
			if err != nil {
				t.Fatal(err)
			}
			baseKeys := perCoreKeys(base.Trace)

			for i := 1; i <= kills; i++ {
				kill := base.Cycles * uint64(i) / (kills + 1)
				plan, err := faults.Parse(fmt.Sprintf("kill:%d", kill))
				if err != nil {
					t.Fatal(err)
				}
				res, err := harness.Run(crashSpec(wl.name, wl.params, plan))
				if err != nil {
					t.Fatalf("kill %d: %v", kill, err)
				}
				if !res.Crashed {
					t.Fatalf("kill %d: run was not stopped", kill)
				}

				// The harness already loaded through the salvage path;
				// redo it explicitly so the test pins the public pipeline.
				f, rep, err := traceio.Salvage(res.TraceBytes)
				if err != nil {
					t.Fatalf("kill %d: salvage: %v", kill, err)
				}
				if rep.BytesStructural+rep.BytesRecovered+rep.BytesDamaged+rep.BytesSkipped != rep.BytesTotal {
					t.Fatalf("kill %d: salvage accounting does not add up: %+v", kill, rep)
				}
				tr, err := analyzer.FromSalvaged(f, rep)
				if err != nil {
					t.Fatalf("kill %d: load: %v", kill, err)
				}
				if !tr.Truncated {
					t.Fatalf("kill %d: crash trace not flagged truncated", kill)
				}
				if errs := analyzer.Errors(analyzer.Validate(tr)); len(errs) != 0 {
					t.Fatalf("kill %d: validation errors on salvaged prefix: %v", kill, errs)
				}

				// Prefix property per core: the salvaged records must be
				// exactly the first k of the baseline's stream.
				for core, got := range perCoreKeys(tr) {
					want := baseKeys[core]
					if len(got) > len(want) {
						t.Fatalf("kill %d core %d: salvaged %d records, baseline only has %d",
							kill, core, len(got), len(want))
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("kill %d core %d: record %d diverges from baseline: %s vs %s",
								kill, core, j, got[j], want[j])
						}
					}
				}
			}
		})
	}
}

// TestFlushStallBackpressure checks that injected flush-DMA stalls slow
// the tracer (visible as flush cycles) without corrupting the trace or
// perturbing the workload's own transfers into failure.
func TestFlushStallBackpressure(t *testing.T) {
	params := map[string]string{"n": "128", "t": "32"}
	base, err := harness.Run(crashSpec("matmul", params, nil))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("stall:*:0:20000:8")
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := harness.Run(crashSpec("matmul", params, plan))
	if err != nil {
		t.Fatal(err)
	}
	if stalled.Stats.FlushCycles <= base.Stats.FlushCycles {
		t.Fatalf("stalls did not slow flushing: %d vs baseline %d",
			stalled.Stats.FlushCycles, base.Stats.FlushCycles)
	}
	if stalled.Salvage != nil || stalled.Crashed {
		t.Fatal("stalls alone must not damage the trace")
	}
	if errs := analyzer.Errors(analyzer.Validate(stalled.Trace)); len(errs) != 0 {
		t.Fatalf("validation errors under stalls: %v", errs)
	}
	if stalled.Trace.NumEvents() == 0 {
		t.Fatal("empty trace under stalls")
	}
}

// TestCrashTraceSinglePointCorruption layers a single corrupted byte on a
// healthy trace and checks the recovery floor promised by Salvage: every
// chunk that ends before the damaged byte is recovered verbatim.
func TestCrashTraceSinglePointCorruption(t *testing.T) {
	base, err := harness.Run(crashSpec("matmul", map[string]string{"n": "128", "t": "32"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := traceio.Parse(base.TraceBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Index the clean chunks so salvaged chunks can be matched back.
	cleanKeys := map[string]bool{}
	for _, c := range clean.Chunks {
		cleanKeys[fmt.Sprintf("%d|%d|%x", c.Core, c.AnchorIdx, c.Data)] = true
	}
	// Offsets chosen inside the chunk region (past header + metadata).
	for _, off := range []int{len(base.TraceBytes) / 2, len(base.TraceBytes) - 30} {
		plan, err := faults.Parse(fmt.Sprintf("corrupt:%d:0x40", off))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := plan.MangleTrace(base.TraceBytes)
		f, rep, err := traceio.Salvage(data)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		verified := 0
		for _, c := range f.Chunks {
			if len(c.Data) > 0 && traceio.ChunkCRC(c) == c.CRC {
				verified++
				if !cleanKeys[fmt.Sprintf("%d|%d|%x", c.Core, c.AnchorIdx, c.Data)] {
					t.Fatalf("offset %d: verified chunk (core %d) is not in the clean trace", off, c.Core)
				}
			}
		}
		// A single corrupted byte touches at most one chunk (or the
		// footer); everything else must be recovered verbatim.
		if verified < len(clean.Chunks)-1 {
			t.Fatalf("offset %d: only %d of %d chunks recovered verbatim (report %+v)",
				off, verified, len(clean.Chunks), rep)
		}
		if _, err := analyzer.FromSalvaged(f, rep); err != nil {
			t.Fatalf("offset %d: load: %v", off, err)
		}
	}
}
