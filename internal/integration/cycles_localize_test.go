package integration

import (
	"fmt"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer/cycles"
	"github.com/celltrace/pdt/internal/analyzer/diff"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/faults"
	"github.com/celltrace/pdt/internal/harness"
)

// TestCycleIterationCounts pins the detector's end-to-end contract on
// the iterative workloads: the recovered cycle count equals the
// configured iteration count — per run where every SPE executes the
// whole loop (pipeline stages, stencil sweeps), in total where the loop
// is distributed across the farm (taskfarm tasks, stream chunks).
func TestCycleIterationCounts(t *testing.T) {
	matrix := []struct {
		name   string
		params map[string]string
		perRun int // expected cycles in every detected run (0 = don't check)
		total  int // expected cycles across all runs (0 = don't check)
	}{
		{"pipeline", map[string]string{"blocks": "8", "blockbytes": "1024"}, 8, 0},
		{"stencil", map[string]string{"w": "64", "h": "16", "iters": "4"}, 4, 0},
		{"taskfarm", map[string]string{"tasks": "16", "blockbytes": "1024"}, 0, 16},
		{"stream", map[string]string{"elements": "131072"}, 0, 32},
	}
	for _, wl := range matrix {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			t.Parallel()
			cfg := core.DefaultTraceConfig()
			res, err := harness.Run(harness.Spec{Workload: wl.name, Params: wl.params, Trace: &cfg})
			if err != nil {
				t.Fatal(err)
			}
			rep := cycles.Detect(res.Trace, cycles.Options{})
			if rep.Detected() == 0 {
				t.Fatal("no run detected a cycle structure")
			}
			for i := range rep.Runs {
				r := &rep.Runs[i]
				if !r.Detected {
					t.Errorf("SPE%d run %d: not detected", r.Core, r.Run)
					continue
				}
				if wl.perRun > 0 && len(r.Cycles) != wl.perRun {
					t.Errorf("SPE%d run %d: %d cycles, want %d", r.Core, r.Run, len(r.Cycles), wl.perRun)
				}
			}
			if wl.total > 0 && rep.TotalCycles != wl.total {
				t.Errorf("total cycles = %d, want %d", rep.TotalCycles, wl.total)
			}
		})
	}
}

// stallExtraCycles is the injected flush stall: 200k machine cycles
// (5000 timebase ticks at div 40) — far above the diff's flag floor,
// well below a pipeline iteration, so exactly one cycle elongates
// without drowning detection.
const stallExtraCycles = 200_000

// TestAlignDiffLocalizesStalledCycle is the regression-localization
// story end to end: perturb one iteration of a pipeline run with a
// stalled flush DMA (single-buffered, so the SPE eats the stall
// inline), align-diff the perturbed trace against the clean baseline,
// and require the per-cycle layer to finger exactly the cycle the
// stall landed in — the one containing the first flush issued at or
// after the fault's threshold.
func TestAlignDiffLocalizesStalledCycle(t *testing.T) {
	params := map[string]string{"blocks": "8", "blockbytes": "4096"}
	spec := func(plan *faults.Plan) harness.Spec {
		cfg := core.DefaultTraceConfig()
		// A small single buffer forces a flush every few records, so
		// every cycle of every run contains flushes for the fault to hit.
		cfg.SPEBufferSize = 512
		cfg.DoubleBuffered = false
		return harness.Spec{Workload: "pipeline", Params: params, Trace: &cfg, Faults: plan}
	}

	base, err := harness.Run(spec(nil))
	if err != nil {
		t.Fatal(err)
	}
	baseRep := cycles.Detect(base.Trace, cycles.Options{})

	// Target the middle cycle of the first detected run with enough
	// cycles that boundaries don't interfere.
	var target *cycles.Run
	for i := range baseRep.Runs {
		if r := &baseRep.Runs[i]; r.Detected && len(r.Cycles) >= 4 {
			target = r
			break
		}
	}
	if target == nil {
		t.Fatal("baseline has no detected run with >= 4 cycles")
	}
	mid := target.Cycles[len(target.Cycles)/2]
	div := base.Trace.Header.TimebaseDiv
	stallAt := mid.Start * uint64(div)

	// The cycle that actually elongates is the one holding the first
	// flush at or after the threshold (the stall may land past mid's
	// start if mid's first flush comes later).
	wantIdx := -1
	for _, e := range base.Trace.Events() {
		if e.Core != target.Core || e.ID != event.SPETraceFlush || e.Global < mid.Start {
			continue
		}
		for ci := range target.Cycles {
			c := &target.Cycles[ci]
			if e.Global >= c.Start && e.Global <= c.End {
				wantIdx = c.Index
			}
		}
		break
	}
	if wantIdx < 0 {
		t.Fatalf("no flush of SPE%d inside a cycle at or after tick %d", target.Core, mid.Start)
	}

	plan, err := faults.Parse(fmt.Sprintf("stall:%d:%d:%d:1", target.Core, stallAt, stallExtraCycles))
	if err != nil {
		t.Fatal(err)
	}
	pert, err := harness.Run(spec(plan))
	if err != nil {
		t.Fatal(err)
	}
	if pert.Crashed || pert.Salvage != nil {
		t.Fatal("a stalled flush must not damage the run")
	}

	rep, err := diff.Diff(base.Trace, pert.Trace, diff.Options{Mode: diff.ModeAlign})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles == nil {
		t.Fatal("align diff carries no cycle layer")
	}
	var rd *diff.CycleRunDelta
	for i := range rep.Cycles.Runs {
		if r := &rep.Cycles.Runs[i]; r.Core == target.Core && r.Run == target.Run {
			rd = r
			break
		}
	}
	if rd == nil {
		t.Fatalf("align diff has no delta for SPE%d run %d", target.Core, target.Run)
	}
	if !rd.DetectedA || !rd.DetectedB {
		t.Fatalf("detection lost under the fault: A=%v B=%v", rd.DetectedA, rd.DetectedB)
	}

	// The regression must localize through the diff's own shift
	// localizer: the timeline jump enters at the stalled cycle (or the
	// one after it — detection snaps the cut to the nearest iteration
	// boundary, so a stall between two events can land on either side),
	// and its magnitude is on the order of the injected stall.
	if rd.ShiftAt < 0 {
		t.Fatal("align diff localized no timeline shift for the stalled run")
	}
	sp := &rd.Pairs[rd.ShiftAt]
	if sp.IndexA != wantIdx && sp.IndexA != wantIdx+1 {
		t.Errorf("shift enters at cycle %d, want the stalled cycle %d (or %d)",
			sp.IndexA, wantIdx, wantIdx+1)
	}
	stallTicks := int64(stallExtraCycles / uint64(div))
	if rd.ShiftTicks < stallTicks/2 {
		t.Errorf("localized shift is %d ticks, want >= %d (half the injected stall)",
			rd.ShiftTicks, stallTicks/2)
	}
	// And only localize: every cycle's own duration stays well under the
	// injected stall — the delay displaced later iterations without
	// smearing into their per-cycle metrics.
	for i := range rd.Pairs {
		if d := rd.Pairs[i].WallDelta(); d > stallTicks/2 || d < -stallTicks/2 {
			t.Errorf("cycle pair (%d,%d) wall moved %d ticks — regression not localized",
				rd.Pairs[i].IndexA, rd.Pairs[i].IndexB, d)
		}
	}
	// No other run may localize a comparable shift: the fault hit one
	// SPE's flush path, not the whole machine.
	for i := range rep.Cycles.Runs {
		r := &rep.Cycles.Runs[i]
		if r == rd || r.ShiftAt < 0 {
			continue
		}
		if r.ShiftTicks >= stallTicks/2 || r.ShiftTicks <= -stallTicks/2 {
			t.Logf("note: SPE%d run %d also shifted %d ticks (downstream of the stalled stage)",
				r.Core, r.Run, r.ShiftTicks)
		}
	}
}
