// Package integration holds cross-module property tests: randomly
// generated SPE programs are run traced and untraced, and the whole stack
// (simulator, tracer, trace format, analyzer) must agree on invariants.
package integration

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
)

// opKind enumerates the generator's SPU operations.
type opKind int

const (
	opCompute opKind = iota
	opGet
	opPut
	opGetList
	opWait
	opAtomicAdd
	opUserEvent
	opUserLog
	numOps
)

// randProgram is a reproducible random SPE program: a fixed op sequence
// (generated up front so traced and untraced runs execute identically)
// plus the trace-record counts it must produce under full tracing.
type randProgram struct {
	ops []func(spu cell.SPU)
	// expected SPE record count under full tracing (excluding program
	// start/end and flush records).
	expectRecords int
	pendingTags   uint32
}

// genProgram builds a program of n ops from rng, using the scratch and
// atomic EAs provided.
func genProgram(rng *rand.Rand, n int, scratchEA, atomicEA uint64) *randProgram {
	p := &randProgram{}
	for i := 0; i < n; i++ {
		switch opKind(rng.Intn(int(numOps))) {
		case opCompute:
			c := uint64(rng.Intn(5000) + 1)
			p.ops = append(p.ops, func(spu cell.SPU) { spu.Compute(c) })
		case opGet:
			size := []int{16, 128, 1024, 4096}[rng.Intn(4)]
			tag := rng.Intn(8)
			off := rng.Intn(4) * 8192
			p.ops = append(p.ops, func(spu cell.SPU) {
				spu.Get(off, scratchEA+uint64(off), size, tag)
			})
			p.pendingTags |= 1 << uint(tag)
			p.expectRecords++
		case opPut:
			size := []int{16, 256, 2048}[rng.Intn(3)]
			tag := rng.Intn(8)
			off := rng.Intn(4) * 8192
			p.ops = append(p.ops, func(spu cell.SPU) {
				spu.Put(off, scratchEA+uint64(off), size, tag)
			})
			p.pendingTags |= 1 << uint(tag)
			p.expectRecords++
		case opGetList:
			tag := rng.Intn(8)
			list := []cell.ListElem{
				{EA: scratchEA, Size: 64},
				{EA: scratchEA + 4096, Size: 128},
			}
			p.ops = append(p.ops, func(spu cell.SPU) {
				spu.GetList(16384, list, tag)
			})
			p.pendingTags |= 1 << uint(tag)
			p.expectRecords++
		case opWait:
			mask := p.pendingTags
			if mask == 0 {
				mask = 1
			}
			p.ops = append(p.ops, func(spu cell.SPU) { spu.WaitTagAll(mask) })
			p.pendingTags = 0
			p.expectRecords += 2
		case opAtomicAdd:
			d := uint64(rng.Intn(9) + 1)
			p.ops = append(p.ops, func(spu cell.SPU) { spu.AtomicAdd(atomicEA, d) })
			p.expectRecords += 2
		case opUserEvent:
			a := uint64(rng.Intn(1000))
			p.ops = append(p.ops, func(spu cell.SPU) { core.User(spu, 7, a, a+1) })
			p.expectRecords++
		case opUserLog:
			p.ops = append(p.ops, func(spu cell.SPU) { core.UserLog(spu, "random op") })
			p.expectRecords++
		}
	}
	// Drain outstanding DMA so the program ends quiescent.
	if p.pendingTags != 0 {
		mask := p.pendingTags
		p.ops = append(p.ops, func(spu cell.SPU) { spu.WaitTagAll(mask) })
		p.expectRecords += 2
	}
	return p
}

// runRandom executes one generated scenario and returns the machine's
// final cycle, the trace (nil when untraced) and per-SPE LS snapshots.
func runRandom(t *testing.T, seed int64, nSPE, opsPerSPE int, traced bool) (uint64, *analyzer.Trace, [][]byte, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mc := cell.DefaultConfig()
	mc.NumSPEs = nSPE
	mc.MemSize = 64 * cell.MiB
	m := cell.NewMachine(mc)
	var s *core.Session
	if traced {
		cfg := core.DefaultTraceConfig()
		cfg.Workload = "random"
		s = core.NewSession(m, cfg)
		s.Attach()
	}
	scratch := m.Alloc(64*cell.KiB, 128)
	atomicEA := m.Alloc(8, 8)
	progs := make([]*randProgram, nSPE)
	expect := 0
	for i := range progs {
		progs[i] = genProgram(rng, opsPerSPE, scratch, atomicEA)
		expect += progs[i].expectRecords
	}
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < nSPE; i++ {
			prog := progs[i]
			hs = append(hs, h.Run(i, "random", func(spu cell.SPU) uint32 {
				for _, op := range prog.ops {
					op(spu)
				}
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	var tr *analyzer.Trace
	if traced {
		var buf bytes.Buffer
		if err := s.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var err error
		tr, err = analyzer.Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	ls := make([][]byte, nSPE)
	for i := range ls {
		ls[i] = append([]byte(nil), m.SPE(i).LS()[:32*cell.KiB]...)
	}
	return m.Now(), tr, ls, expect
}

func TestRandomProgramsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c1, _, ls1, _ := runRandom(t, seed, 4, 40, false)
		c2, _, ls2, _ := runRandom(t, seed, 4, 40, false)
		if c1 != c2 {
			t.Fatalf("seed %d: cycles %d vs %d", seed, c1, c2)
		}
		for i := range ls1 {
			if !bytes.Equal(ls1[i], ls2[i]) {
				t.Fatalf("seed %d: SPE %d local store differs between runs", seed, i)
			}
		}
	}
}

func TestRandomProgramsTracedSemanticsUnchanged(t *testing.T) {
	for seed := int64(10); seed <= 15; seed++ {
		_, _, plain, _ := runRandom(t, seed, 3, 30, false)
		_, tr, traced, _ := runRandom(t, seed, 3, 30, true)
		for i := range plain {
			if !bytes.Equal(plain[i], traced[i]) {
				t.Fatalf("seed %d: tracing changed SPE %d data", seed, i)
			}
		}
		if tr == nil || tr.NumEvents() == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
	}
}

func TestRandomProgramsTraceInvariants(t *testing.T) {
	for seed := int64(20); seed <= 27; seed++ {
		_, tr, _, expect := runRandom(t, seed, 4, 50, true)
		if errs := analyzer.Errors(analyzer.Validate(tr)); len(errs) != 0 {
			t.Fatalf("seed %d: validation errors: %v", seed, errs)
		}
		// Record accounting: expected app records + 2 lifecycle per run.
		app := 0
		for _, e := range tr.Events() {
			if !e.IsSPE() {
				continue
			}
			switch e.ID {
			case event.SPEProgramStart, event.SPEProgramEnd, event.SPETraceFlush:
			default:
				app++
			}
		}
		if app != expect {
			t.Fatalf("seed %d: %d app records, expected %d", seed, app, expect)
		}
		// Interval partition: per-state sums equal wall per run.
		s := analyzer.Summarize(tr)
		for _, r := range s.Runs {
			var total uint64
			for _, st := range analyzer.States() {
				total += r.StateTicks[st]
			}
			if total != r.Wall() {
				t.Fatalf("seed %d run %d: states %d != wall %d", seed, r.Run, total, r.Wall())
			}
		}
	}
}

func TestRandomProgramsTraceByteStable(t *testing.T) {
	// The same seed must serialize to the identical trace file.
	write := func(seed int64) []byte {
		rng := rand.New(rand.NewSource(seed))
		mc := cell.DefaultConfig()
		mc.NumSPEs = 2
		mc.MemSize = 64 * cell.MiB
		m := cell.NewMachine(mc)
		cfg := core.DefaultTraceConfig()
		s := core.NewSession(m, cfg)
		s.Attach()
		scratch := m.Alloc(64*cell.KiB, 128)
		atomicEA := m.Alloc(8, 8)
		progs := []*randProgram{
			genProgram(rng, 30, scratch, atomicEA),
			genProgram(rng, 30, scratch, atomicEA),
		}
		m.RunMain(func(h cell.Host) {
			var hs []*cell.SPEHandle
			for i := range progs {
				prog := progs[i]
				hs = append(hs, h.Run(i, "r", func(spu cell.SPU) uint32 {
					for _, op := range prog.ops {
						op(spu)
					}
					return 0
				}))
			}
			for _, hd := range hs {
				h.Wait(hd)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := write(42)
	b := write(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different trace bytes")
	}
}
