//go:build smoke

package integration

// Bounded-RSS streaming smoke (`make stream-smoke`): synthesize a
// ~100 MB trace on disk — more than 10× the stream window — and load it
// through the incremental StreamLoader under a hard runtime memory
// limit, asserting the live heap never grows past twice the window. The
// batch loader would hold every decoded event at once (gigabytes of
// columns for this volume); the stream loader must stay flat no matter
// how long the trace gets.

import (
	"bufio"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// buildBigTrace writes a structurally valid multi-run trace of roughly
// wantBytes to path, returning the record count. Chunks alternate over
// the SPEs, several chunks per run, with monotonic per-run clocks —
// the shape a real long run flushes.
func buildBigTrace(tb testing.TB, path string, wantBytes int64) int64 {
	tb.Helper()
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)

	const spes = 8
	w, err := traceio.NewWriter(bw, traceio.Header{
		Version: traceio.Version, NumSPEs: spes, TimebaseDiv: 40, ClockHz: 3_200_000_000,
	})
	if err != nil {
		tb.Fatal(err)
	}
	meta := &traceio.Meta{Workload: "stream-smoke"}
	for s := 0; s < spes; s++ {
		meta.Anchors = append(meta.Anchors, traceio.Anchor{
			SPE: s, Timebase: uint64(100 + s), Loaded: 0xFFFFFFFF, Program: "big",
		})
	}
	if err := w.WriteMeta(meta); err != nil {
		tb.Fatal(err)
	}

	var (
		written int64
		records int64
		clock   [spes]uint64
		data    []byte
	)
	const perChunk = 8192
	for core := 0; written < wantBytes; core = (core + 1) % spes {
		data = data[:0]
		for i := 0; i < perChunk; i++ {
			clock[core] += uint64(10 + i%7)
			r := event.Record{ID: event.SPEMFCGet, Core: uint8(core), Flags: event.FlagDecrTime,
				Time: clock[core], Args: []uint64{0, 64, 128, uint64(i % 16)}}
			var err error
			data, err = r.AppendTo(data)
			if err != nil {
				tb.Fatal(err)
			}
		}
		if err := w.WriteChunk(traceio.Chunk{
			Core: uint8(core), AnchorIdx: uint16(core), Data: data,
		}); err != nil {
			tb.Fatal(err)
		}
		written += int64(len(data))
		records += perChunk
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		tb.Fatal(err)
	}
	return records
}

func TestSmokeStreamBoundedRSS(t *testing.T) {
	const window = 8 << 20
	const traceBytes = 100 << 20 // >10x the window

	path := filepath.Join(t.TempDir(), "big.pdt")
	records := buildBigTrace(t, path, traceBytes)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("trace: %d bytes, %d records", fi.Size(), records)
	if fi.Size() < 10*window {
		t.Fatalf("trace %d bytes is under 10x the %d-byte window; not a bounded-RSS test", fi.Size(), window)
	}

	// Settle the heap, then hold the runtime to baseline + 2x window. If
	// the loader's live set outgrew that, HeapAlloc would be forced past
	// the ceiling no matter how hard the GC runs.
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	ceiling := int64(base.HeapAlloc) + 2*window
	prev := debug.SetMemoryLimit(ceiling)
	defer debug.SetMemoryLimit(prev)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l := analyzer.NewStreamLoader(analyzer.StreamOptions{
		Limits: analyzer.Limits{StreamWindowBytes: window},
	})
	buf := make([]byte, 1<<20)
	var peak uint64
	for i := 0; ; i++ {
		n, rerr := f.Read(buf)
		if n > 0 {
			if _, werr := l.Write(buf[:n]); werr != nil {
				t.Fatal(werr)
			}
		}
		if i%8 == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		if rerr != nil {
			break
		}
	}
	res, err := l.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("stream not complete")
	}
	if res.Events != records {
		t.Fatalf("events = %d, want %d", res.Events, records)
	}
	if res.Summary == nil || len(res.Summary.Runs) != 8 {
		t.Fatalf("summary runs = %+v, want 8 runs", res.Summary)
	}

	growth := int64(peak) - int64(base.HeapAlloc)
	t.Logf("heap: baseline %d, peak %d, growth %d (window %d)", base.HeapAlloc, peak, growth, window)
	if growth > 2*window {
		t.Fatalf("heap grew %d bytes streaming a %d-byte trace; want < 2x the %d-byte window",
			growth, fi.Size(), window)
	}
}
