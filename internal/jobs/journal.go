// Package jobs gives pdt-tad a crash-safe asynchronous job API: an
// append-only, fsync'd journal of job state transitions plus a worker
// manager that replays the journal on boot, so a job accepted with a
// 202 survives the process that accepted it. A job killed mid-analysis
// is re-run exactly once after restart; because every analysis artifact
// is a deterministic render of a content-addressed trace image, the
// replayed result is byte-identical to the uninterrupted one — which is
// exactly what the chaos harness asserts.
package jobs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"sync"
)

// Journal line format: a magic tag, the CRC-32 (IEEE) of the JSON
// payload in fixed-width hex, then the payload. One record per line.
//
//	pdtj1 3f2a9c01 {"op":"accept","id":"j-01",...}
//
// The CRC makes a torn tail (the classic crash artifact: a partially
// written last line) and any in-place corruption detectable: replay
// drops damaged lines and counts them instead of trusting them.
const journalMagic = "pdtj1"

// Record is one journaled job state transition.
//
// Ops, in lifecycle order:
//
//	accept    job admitted; Kind/Key/Webhook/MaxAttempts are set.
//	          Written and fsync'd BEFORE the client's 202, so an
//	          accepted job can never vanish.
//	start     attempt Attempt began.
//	fail      attempt Attempt failed with Err (retryable).
//	giveup    the attempt budget is exhausted; the job is failed.
//	done      the job completed; CRC is the checksum of the result
//	          artifact, for byte-convergence verification.
//	notified  the webhook callback was delivered.
type Record struct {
	Op          string `json:"op"`
	ID          string `json:"id"`
	Kind        string `json:"kind,omitempty"`
	Key         string `json:"key,omitempty"`
	Webhook     string `json:"webhook,omitempty"`
	MaxAttempts int    `json:"maxAttempts,omitempty"`
	Attempt     int    `json:"attempt,omitempty"`
	Err         string `json:"err,omitempty"`
	CRC         uint32 `json:"crc,omitempty"`
}

// ReplayStats reports what OpenJournal found.
type ReplayStats struct {
	Records int // intact records returned
	Damaged int // lines dropped for bad magic, CRC, or JSON
}

// ErrJournalDisabled is returned by Append after Disable — the
// in-process stand-in for "the process is dead"; nothing may reach the
// journal afterwards.
var ErrJournalDisabled = errors.New("jobs: journal disabled")

// Disturber is the fault-injection seam for journal writes;
// *faults.ServicePlan implements it.
type Disturber interface {
	BeforeIO()
	WriteFault(n int) (keep int, err error)
}

// Journal is the append-only, fsync'd job journal. Append is safe for
// concurrent use.
type Journal struct {
	path    string
	disturb Disturber

	mu       sync.Mutex
	f        *os.File
	disabled bool
	appends  uint64
	errs     uint64
}

// OpenJournal opens (creating if absent) the journal at path, replays
// the intact records, and leaves the file open for appends. Damaged
// lines — including the torn tail a crash mid-append leaves — are
// dropped and counted, never trusted. disturb may be nil.
func OpenJournal(path string, disturb Disturber) (*Journal, []Record, ReplayStats, error) {
	var st ReplayStats
	var recs []Record
	if raw, err := os.ReadFile(path); err == nil {
		recs, st = parseJournal(raw)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, st, fmt.Errorf("jobs: journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, st, fmt.Errorf("jobs: journal: %w", err)
	}
	return &Journal{path: path, f: f, disturb: disturb}, recs, st, nil
}

// parseJournal decodes journal bytes into intact records, counting and
// skipping damage. Exposed shape-wise via OpenJournal and the fuzzer.
func parseJournal(raw []byte) ([]Record, ReplayStats) {
	var st ReplayStats
	var recs []Record
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		rec, ok := parseLine(sc.Text())
		if !ok {
			st.Damaged++
			continue
		}
		recs = append(recs, rec)
		st.Records++
	}
	if sc.Err() != nil {
		// A line too long for the buffer is damage, not a parse result.
		st.Damaged++
	}
	return recs, st
}

// parseLine validates one "pdtj1 <crc8> <json>" line.
func parseLine(line string) (Record, bool) {
	var rec Record
	rest, ok := strings.CutPrefix(line, journalMagic+" ")
	if !ok || len(rest) < 10 || rest[8] != ' ' {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(rest[:8], "%08x", &want); err != nil {
		return rec, false
	}
	payload := rest[9:]
	if crc32.ChecksumIEEE([]byte(payload)) != want {
		return rec, false
	}
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return rec, false
	}
	if rec.Op == "" || rec.ID == "" {
		return rec, false
	}
	return rec, true
}

// Append journals one record durably: marshal, CRC-frame, write,
// fsync — the record is on the medium before Append returns. A torn
// write (injected or real) persists its prefix and returns the error;
// the caller must treat it as a crash, not retry it.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: journal: %w", err)
	}
	line := fmt.Sprintf("%s %08x %s\n", journalMagic, crc32.ChecksumIEEE(payload), payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled {
		return ErrJournalDisabled
	}
	if j.disturb != nil {
		j.disturb.BeforeIO()
		keep, ferr := j.disturb.WriteFault(len(line))
		if ferr != nil {
			if keep > 0 {
				_, _ = j.f.WriteString(line[:keep])
				_ = j.f.Sync()
			}
			j.errs++
			return ferr
		}
	}
	if _, err := j.f.WriteString(line); err != nil {
		j.errs++
		return fmt.Errorf("jobs: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.errs++
		return fmt.Errorf("jobs: journal: %w", err)
	}
	j.appends++
	return nil
}

// Disable makes every subsequent Append fail with ErrJournalDisabled.
// The chaos harness calls it at a simulated kill point so no goroutine
// of the "dead" process can keep writing.
func (j *Journal) Disable() {
	j.mu.Lock()
	j.disabled = true
	j.mu.Unlock()
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.disabled = true
	return j.f.Close()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }
