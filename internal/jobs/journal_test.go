package jobs

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/faults"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, recs, st, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || st.Records != 0 || st.Damaged != 0 {
		t.Fatalf("fresh journal not empty: %v %+v", recs, st)
	}
	want := []Record{
		{Op: "accept", ID: "j-1", Kind: "summary", Key: "ab12", Webhook: "http://x", MaxAttempts: 3},
		{Op: "start", ID: "j-1", Attempt: 1},
		{Op: "fail", ID: "j-1", Attempt: 1, Err: "boom"},
		{Op: "start", ID: "j-1", Attempt: 2},
		{Op: "done", ID: "j-1", CRC: 0xdeadbeef},
		{Op: "notified", ID: "j-1"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, st, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Damaged != 0 || len(got) != len(want) {
		t.Fatalf("replay: %d records, %d damaged", len(got), st.Damaged)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial last line;
// replay must drop exactly that line and keep everything before it.
func TestJournalTornTail(t *testing.T) {
	path := journalPath(t)
	j, _, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: "accept", ID: "j-1", Kind: "gaps", Key: "cd"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: "start", ID: "j-1", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail: drop the last 7 bytes of the final line.
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, st, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Op != "accept" {
		t.Fatalf("torn tail replay: %+v", recs)
	}
	if st.Damaged != 1 {
		t.Fatalf("torn tail not counted as damage: %+v", st)
	}
}

// TestJournalInjectedTorn: the fault plan tears an append; the error
// surfaces, the prefix persists, and replay over the damaged file still
// yields every intact record.
func TestJournalInjectedTorn(t *testing.T) {
	path := journalPath(t)
	plan, err := faults.ParseService("torn:2")
	if err != nil {
		t.Fatal(err)
	}
	j, _, _, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: "accept", ID: "j-9", Kind: "profile", Key: "ee"}); err != nil {
		t.Fatal(err)
	}
	err = j.Append(Record{Op: "start", ID: "j-9", Attempt: 1})
	if err == nil || !strings.Contains(err.Error(), "torn write") {
		t.Fatalf("torn append returned %v", err)
	}
	j.Close()

	_, recs, st, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "j-9" || recs[0].Op != "accept" {
		t.Fatalf("replay after torn append: %+v", recs)
	}
	if st.Damaged != 1 {
		t.Fatalf("torn line not counted: %+v", st)
	}
}

func TestJournalDisable(t *testing.T) {
	j, _, _, err := OpenJournal(journalPath(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Disable()
	if err := j.Append(Record{Op: "accept", ID: "j-1"}); err != ErrJournalDisabled {
		t.Fatalf("append after Disable: %v", err)
	}
}

// TestJournalCorruptLines: flipped bytes, bad magic, bad CRC, and junk
// lines are all dropped and counted; intact neighbours survive.
func TestJournalCorruptLines(t *testing.T) {
	good := func(r Record) string {
		b, _ := json.Marshal(r)
		return fmt.Sprintf("%s %08x %s", journalMagic, crc32.ChecksumIEEE(b), b)
	}
	lines := []string{
		good(Record{Op: "accept", ID: "j-1", Kind: "summary", Key: "aa"}),
		"garbage line",
		"pdtj1 00000000 {\"op\":\"start\",\"id\":\"j-1\"}",                              // wrong CRC
		"pdtj2 12345678 {\"op\":\"start\",\"id\":\"j-1\"}",                              // wrong magic
		good(Record{ID: "j-1"}),                                                         // missing op
		strings.Replace(good(Record{Op: "done", ID: "j-1", CRC: 7}), "done", "dune", 1), // payload flip
		good(Record{Op: "done", ID: "j-1", CRC: 42}),
	}
	recs, st := parseJournal([]byte(strings.Join(lines, "\n") + "\n"))
	if len(recs) != 2 {
		t.Fatalf("got %d records: %+v", len(recs), recs)
	}
	if recs[0].Op != "accept" || recs[1].Op != "done" || recs[1].CRC != 42 {
		t.Fatalf("wrong survivors: %+v", recs)
	}
	if st.Damaged != 5 {
		t.Fatalf("damaged=%d want 5", st.Damaged)
	}
}

// FuzzJournalReplay: replay must never panic and must never accept a
// line whose CRC does not match its payload.
func FuzzJournalReplay(f *testing.F) {
	seed := func(r Record) []byte {
		b, _ := json.Marshal(r)
		return []byte(fmt.Sprintf("%s %08x %s\n", journalMagic, crc32.ChecksumIEEE(b), b))
	}
	f.Add(seed(Record{Op: "accept", ID: "j-1", Kind: "summary", Key: "ab", MaxAttempts: 3}))
	f.Add(seed(Record{Op: "done", ID: "j-1", CRC: 0xdeadbeef}))
	f.Add([]byte("pdtj1 00000000 {}\n"))
	f.Add([]byte("pdtj1 deadbeef {\"op\":\"start\",\"id\":\"j\"}\npdtj1"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, st := parseJournal(raw)
		if st.Records != len(recs) {
			t.Fatalf("stats/records mismatch: %d vs %d", st.Records, len(recs))
		}
		for _, r := range recs {
			if r.Op == "" || r.ID == "" {
				t.Fatalf("accepted record without op/id: %+v", r)
			}
		}
	})
}

func TestJournalPath(t *testing.T) {
	path := journalPath(t)
	j, _, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Path() != path {
		t.Fatalf("Path() = %q, want %q", j.Path(), path)
	}
}
