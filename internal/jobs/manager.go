package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// Job phases, in lifecycle order. The chaos plan's killphase directive
// names these; PhaseHook fires at each boundary.
const (
	PhaseAccept  = "accept"  // accept record journaled, before the 202 returns
	PhaseStart   = "start"   // start record journaled, before the analysis runs
	PhaseRender  = "render"  // analysis finished, before the done record
	PhaseDone    = "done"    // done record journaled, before the webhook
	PhaseWebhook = "webhook" // before the webhook callback is attempted
)

// Job statuses.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Job is the client-visible job document.
type Job struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Key         string `json:"key"` // hex content address of the trace image
	Webhook     string `json:"webhook,omitempty"`
	Status      string `json:"status"`
	Attempts    int    `json:"attempts"`
	MaxAttempts int    `json:"maxAttempts"`
	Error       string `json:"error,omitempty"`
	ResultCRC   uint32 `json:"resultCrc,omitempty"`
	// Replayed marks a job re-adopted from the journal after a restart.
	Replayed bool `json:"replayed,omitempty"`

	notified bool
}

// Terminal reports whether the job has reached a final state.
func (jb *Job) Terminal() bool { return jb.Status == StatusDone || jb.Status == StatusFailed }

// Stats snapshots the manager counters.
type Stats struct {
	Accepted    uint64 `json:"accepted"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Retries     uint64 `json:"retries"`
	Replayed    int    `json:"replayed"`
	Queued      int    `json:"queued"`
	Running     int    `json:"running"`
	JournalErrs uint64 `json:"journalErrors"`
	Damaged     int    `json:"journalDamaged"`
	WebhooksOK  uint64 `json:"webhooksDelivered"`
	WebhookErrs uint64 `json:"webhookFailures"`
	Crashed     bool   `json:"crashed,omitempty"`
}

// ErrBusy is returned by Submit when the job queue is full.
var ErrBusy = errors.New("jobs: queue full")

// ErrCrashed is returned once the manager has simulated (or been told
// of) a process death; nothing is accepted or processed afterwards.
var ErrCrashed = errors.New("jobs: manager crashed")

// Config wires the manager to its environment. Fetch and Exec are
// required; everything else has a default.
type Config struct {
	// Workers is the analysis worker count (default 2). Job analyses
	// run here, not in HTTP handlers, so the async path's concurrency
	// adds to — and is bounded independently of — the sync path's.
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64); Submit
	// returns ErrBusy beyond it.
	QueueDepth int
	// MaxAttempts is the per-job attempt budget (default 3).
	MaxAttempts int
	// BackoffBase/BackoffCap shape the capped exponential retry
	// backoff: attempt n waits min(Base<<(n-1), Cap).
	// Defaults 250ms / 5s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Fetch restores a trace image by hex content key (the disk tier).
	Fetch func(key string) ([]byte, bool)
	// Exec runs one analysis and returns the rendered artifact bytes.
	// It must be deterministic for a given (kind, image) — replay
	// convergence depends on it — and is expected to persist the
	// artifact itself (the cache's write-through does).
	Exec func(ctx context.Context, kind string, image []byte) ([]byte, error)
	// Notify delivers a webhook callback (nil disables delivery).
	Notify func(url string, payload []byte) error
	// Release is called once when a job reaches a terminal state (the
	// server unpins the trace image); may be nil.
	Release func(key string)
	// PhaseHook, when non-nil, fires at every phase boundary. A non-nil
	// error simulates a process kill at that instant: the manager stops
	// dead — no further journal writes, no further processing. The
	// daemon wires the chaos plan's killphase here; tests wire
	// assertions.
	PhaseHook func(id, phase string) error
	Log       *slog.Logger
}

// Manager owns the job table, the worker pool, and the journal.
type Manager struct {
	cfg Config
	j   *Journal

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	queue  chan string
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	crashed     bool
	accepted    uint64
	completed   uint64
	failed      uint64
	retries     uint64
	replayed    int
	journalErrs uint64
	damaged     int
	webhooksOK  uint64
	webhookErrs uint64
}

// New builds a manager over an opened journal, adopting the replayed
// records: a job with an accept record but no terminal record is
// re-queued exactly once; a done job whose webhook was never delivered
// is re-queued for delivery only. Call Start to begin processing.
func New(j *Journal, replay []Record, st ReplayStats, cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 250 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		j:       j,
		jobs:    map[string]*Job{},
		queue:   make(chan string, cfg.QueueDepth),
		ctx:     ctx,
		cancel:  cancel,
		damaged: st.Damaged,
	}
	for _, rec := range replay {
		m.adopt(rec)
	}
	for _, id := range m.order {
		jb := m.jobs[id]
		switch {
		case !jb.Terminal():
			jb.Status = StatusQueued
			jb.Replayed = true
			m.replayed++
			m.enqueue(id)
		case jb.Status == StatusDone && jb.Webhook != "" && !jb.notified:
			jb.Replayed = true
			m.replayed++
			m.enqueue(id) // webhook redelivery only
		case jb.Terminal() && cfg.Release != nil:
			cfg.Release(jb.Key)
		}
	}
	return m
}

// adopt folds one replayed record into the job table.
func (m *Manager) adopt(rec Record) {
	switch rec.Op {
	case "accept":
		if _, dup := m.jobs[rec.ID]; dup {
			return
		}
		maxA := rec.MaxAttempts
		if maxA <= 0 {
			maxA = m.cfg.MaxAttempts
		}
		m.jobs[rec.ID] = &Job{
			ID: rec.ID, Kind: rec.Kind, Key: rec.Key, Webhook: rec.Webhook,
			Status: StatusQueued, MaxAttempts: maxA,
		}
		m.order = append(m.order, rec.ID)
		return
	}
	jb := m.jobs[rec.ID]
	if jb == nil {
		return // transition for a job whose accept record was damaged
	}
	switch rec.Op {
	case "start":
		if rec.Attempt > jb.Attempts {
			jb.Attempts = rec.Attempt
		}
	case "fail":
		jb.Error = rec.Err
	case "giveup":
		jb.Status = StatusFailed
		if rec.Err != "" {
			jb.Error = rec.Err
		}
	case "done":
		jb.Status = StatusDone
		jb.ResultCRC = rec.CRC
		jb.Error = ""
	case "notified":
		jb.notified = true
	}
}

// Start spawns the workers.
func (m *Manager) Start() {
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				select {
				case <-m.ctx.Done():
					return
				case id := <-m.queue:
					m.process(id)
				}
			}
		}()
	}
}

// Stop halts the workers and waits for in-flight work to end. It does
// not close the journal.
func (m *Manager) Stop() {
	m.cancel()
	m.wg.Wait()
}

// Crashed reports whether a phase hook simulated a process kill.
func (m *Manager) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Submit accepts a new job: the accept record is journaled and fsync'd
// BEFORE Submit returns, so a 202 means the job survives any subsequent
// crash. The returned Job is a snapshot.
func (m *Manager) Submit(kind, key, webhook string) (Job, error) {
	m.mu.Lock()
	if m.crashed {
		m.mu.Unlock()
		return Job{}, ErrCrashed
	}
	if len(m.queue) >= cap(m.queue) {
		m.mu.Unlock()
		return Job{}, ErrBusy
	}
	id := newID()
	jb := &Job{
		ID: id, Kind: kind, Key: key, Webhook: webhook,
		Status: StatusQueued, MaxAttempts: m.cfg.MaxAttempts,
	}
	m.jobs[id] = jb
	m.order = append(m.order, id)
	m.accepted++
	snap := *jb
	m.mu.Unlock()

	if err := m.journal(Record{
		Op: "accept", ID: id, Kind: kind, Key: key,
		Webhook: webhook, MaxAttempts: jb.MaxAttempts,
	}); err != nil {
		// Not durable: withdraw the job rather than lie with a 202.
		m.mu.Lock()
		delete(m.jobs, id)
		if n := len(m.order); n > 0 && m.order[n-1] == id {
			m.order = m.order[:n-1]
		}
		m.mu.Unlock()
		return Job{}, err
	}
	if m.phase(id, PhaseAccept) {
		// Killed after the journal fsync: the job exists durably but
		// the client never hears its 202 — replay must still run it.
		return Job{}, ErrCrashed
	}
	m.enqueue(id)
	return snap, nil
}

// Get snapshots one job.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jb, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *jb, true
}

// Jobs snapshots every job in acceptance order.
func (m *Manager) Jobs() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, *m.jobs[id])
	}
	return out
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	running := 0
	for _, jb := range m.jobs {
		if jb.Status == StatusRunning {
			running++
		}
	}
	return Stats{
		Accepted: m.accepted, Completed: m.completed, Failed: m.failed,
		Retries: m.retries, Replayed: m.replayed,
		Queued: len(m.queue), Running: running,
		JournalErrs: m.journalErrs, Damaged: m.damaged,
		WebhooksOK: m.webhooksOK, WebhookErrs: m.webhookErrs,
		Crashed: m.crashed,
	}
}

// enqueue feeds the worker queue; the capacity check in Submit plus the
// bounded retry population keep this from blocking in practice, but a
// full queue drops to a goroutine so no caller ever deadlocks.
func (m *Manager) enqueue(id string) {
	select {
	case m.queue <- id:
	default:
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			select {
			case m.queue <- id:
			case <-m.ctx.Done():
			}
		}()
	}
}

// process runs one attempt of one job (or just its webhook redelivery).
func (m *Manager) process(id string) {
	m.mu.Lock()
	jb := m.jobs[id]
	if jb == nil || m.crashed {
		m.mu.Unlock()
		return
	}
	if jb.Status == StatusDone {
		// Replayed for webhook redelivery only.
		needsHook := jb.Webhook != "" && !jb.notified
		m.mu.Unlock()
		if needsHook {
			m.deliverWebhook(id)
		}
		return
	}
	if jb.Status == StatusFailed {
		m.mu.Unlock()
		return
	}
	jb.Status = StatusRunning
	jb.Attempts++
	attempt := jb.Attempts
	kind, key := jb.Kind, jb.Key
	m.mu.Unlock()

	if err := m.journal(Record{Op: "start", ID: id, Attempt: attempt}); errors.Is(err, ErrCrashed) {
		return
	}
	if m.phase(id, PhaseStart) {
		return
	}

	img, ok := m.cfg.Fetch(key)
	if !ok {
		// The trace image is gone (disk loss past the CRC's reach):
		// retrying cannot help, fail terminally.
		m.giveup(id, fmt.Sprintf("trace image %s unavailable", key))
		return
	}
	out, err := m.cfg.Exec(m.ctx, kind, img)
	if err != nil {
		if m.ctx.Err() != nil {
			// Shutdown, not failure: leave the job for the next boot's
			// replay (the start record is already journaled).
			m.mu.Lock()
			jb.Status = StatusQueued
			m.mu.Unlock()
			return
		}
		m.retryOrGiveup(id, attempt, err)
		return
	}
	if m.phase(id, PhaseRender) {
		return
	}
	if err := m.journal(Record{Op: "done", ID: id, CRC: crc32.ChecksumIEEE(out)}); errors.Is(err, ErrCrashed) {
		return
	}
	m.mu.Lock()
	jb.Status = StatusDone
	jb.ResultCRC = crc32.ChecksumIEEE(out)
	jb.Error = ""
	m.completed++
	webhook := jb.Webhook
	m.mu.Unlock()
	if m.cfg.Release != nil {
		m.cfg.Release(key)
	}
	if m.phase(id, PhaseDone) {
		return
	}
	if webhook != "" {
		m.deliverWebhook(id)
	}
}

// retryOrGiveup journals the failed attempt and either schedules the
// next one after a capped exponential backoff or fails the job.
func (m *Manager) retryOrGiveup(id string, attempt int, cause error) {
	_ = m.journal(Record{Op: "fail", ID: id, Attempt: attempt, Err: cause.Error()})
	m.mu.Lock()
	jb := m.jobs[id]
	if jb == nil || m.crashed {
		m.mu.Unlock()
		return
	}
	jb.Error = cause.Error()
	budget := jb.MaxAttempts
	m.mu.Unlock()
	if attempt >= budget {
		m.giveup(id, cause.Error())
		return
	}
	backoff := m.cfg.BackoffBase << (attempt - 1)
	if backoff > m.cfg.BackoffCap || backoff <= 0 {
		backoff = m.cfg.BackoffCap
	}
	m.mu.Lock()
	jb.Status = StatusQueued
	m.retries++
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		select {
		case <-time.After(backoff):
			m.enqueue(id)
		case <-m.ctx.Done():
		}
	}()
}

// giveup fails a job terminally.
func (m *Manager) giveup(id, cause string) {
	_ = m.journal(Record{Op: "giveup", ID: id, Err: cause})
	m.mu.Lock()
	jb := m.jobs[id]
	if jb == nil {
		m.mu.Unlock()
		return
	}
	jb.Status = StatusFailed
	jb.Error = cause
	m.failed++
	key, webhook := jb.Key, jb.Webhook
	m.mu.Unlock()
	if m.cfg.Release != nil {
		m.cfg.Release(key)
	}
	if webhook != "" {
		m.deliverWebhook(id)
	}
}

// deliverWebhook posts the job document to its callback URL and
// journals the delivery so a restart does not re-notify.
func (m *Manager) deliverWebhook(id string) {
	if m.cfg.Notify == nil {
		return
	}
	if m.phase(id, PhaseWebhook) {
		return
	}
	jb, ok := m.Get(id)
	if !ok || jb.Webhook == "" {
		return
	}
	payload, err := json.Marshal(jb)
	if err != nil {
		return
	}
	if err := m.cfg.Notify(jb.Webhook, payload); err != nil {
		m.mu.Lock()
		m.webhookErrs++
		m.mu.Unlock()
		m.cfg.Log.Warn("webhook delivery failed", "job", id, "url", jb.Webhook, "err", err)
		return
	}
	m.mu.Lock()
	m.webhooksOK++
	if j := m.jobs[id]; j != nil {
		j.notified = true
	}
	m.mu.Unlock()
	_ = m.journal(Record{Op: "notified", ID: id})
}

// journal appends one record, translating durability loss into policy:
// a torn write or a disabled journal is a crash (the manager stops
// dead, like the process it stands in for); any other error is counted
// and tolerated — the job table stays correct in memory and replay
// will re-run anything the journal missed.
func (m *Manager) journal(rec Record) error {
	err := m.j.Append(rec)
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrJournalDisabled) {
		return ErrCrashed
	}
	if isTorn(err) {
		m.crash()
		return ErrCrashed
	}
	m.mu.Lock()
	m.journalErrs++
	m.mu.Unlock()
	m.cfg.Log.Warn("journal append failed", "op", rec.Op, "job", rec.ID, "err", err)
	return err
}

// phase fires the phase hook; true means "the process just died".
func (m *Manager) phase(id, ph string) bool {
	if m.cfg.PhaseHook == nil {
		return false
	}
	if err := m.cfg.PhaseHook(id, ph); err != nil {
		m.crash()
		return true
	}
	return false
}

// crash simulates the process dying right now: the journal refuses all
// further writes, workers stop, nothing else is observable.
func (m *Manager) crash() {
	m.j.Disable()
	m.mu.Lock()
	m.crashed = true
	m.mu.Unlock()
	m.cancel()
}

// isTorn matches the injected torn-write error without importing the
// faults package (which would be an upward dependency for a fault that
// can also be real).
func isTorn(err error) bool {
	return err != nil && strings.Contains(err.Error(), "torn write")
}

// newID mints a job ID: 10 random bytes, hex, "j-" prefix.
func newID() string {
	var b [10]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("j-%d", time.Now().UnixNano())
	}
	return "j-" + hex.EncodeToString(b[:])
}
