package jobs

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/celltrace/pdt/internal/faults"
)

// testEnv is an in-memory stand-in for the disk tier + analysis cache.
type testEnv struct {
	mu        sync.Mutex
	images    map[string][]byte
	execs     atomic.Int64
	execErrs  atomic.Int64 // first N execs fail
	delivered []string     // webhook payloads, in order
	notifyErr atomic.Int64 // first N deliveries fail
	released  []string
}

func newEnv() *testEnv {
	return &testEnv{images: map[string][]byte{}}
}

func (e *testEnv) put(key string, img []byte) {
	e.mu.Lock()
	e.images[key] = img
	e.mu.Unlock()
}

func (e *testEnv) fetch(key string) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	img, ok := e.images[key]
	return img, ok
}

// exec renders a deterministic artifact from (kind, image).
func (e *testEnv) exec(_ context.Context, kind string, img []byte) ([]byte, error) {
	n := e.execs.Add(1)
	if n <= e.execErrs.Load() {
		return nil, fmt.Errorf("injected exec failure %d", n)
	}
	return []byte(fmt.Sprintf("artifact/%s/%08x", kind, crc32.ChecksumIEEE(img))), nil
}

func (e *testEnv) notify(url string, payload []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int64(len(e.delivered)) < e.notifyErr.Load() {
		e.delivered = append(e.delivered, "") // count the failed slot
		return errors.New("injected webhook failure")
	}
	e.delivered = append(e.delivered, url+" "+string(payload))
	return nil
}

func (e *testEnv) release(key string) {
	e.mu.Lock()
	e.released = append(e.released, key)
	e.mu.Unlock()
}

func (e *testEnv) config() Config {
	return Config{
		Workers:     2,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		Fetch:       e.fetch,
		Exec:        e.exec,
		Notify:      e.notify,
		Release:     e.release,
	}
}

func waitJob(t *testing.T, m *Manager, id string, status string) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if jb, ok := m.Get(id); ok && jb.Status == status {
			return jb
		}
		time.Sleep(2 * time.Millisecond)
	}
	jb, _ := m.Get(id)
	t.Fatalf("job %s never reached %s: %+v", id, status, jb)
	return Job{}
}

func waitWebhooks(t *testing.T, m *Manager, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Stats().WebhooksOK >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("webhook count never reached %d: %+v", n, m.Stats())
}

func openManager(t *testing.T, path string, cfg Config) (*Manager, *Journal) {
	t.Helper()
	j, recs, st, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(j, recs, st, cfg)
	m.Start()
	return m, j
}

func countOps(t *testing.T, path, id, op string) int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := parseJournal(raw)
	n := 0
	for _, r := range recs {
		if r.ID == id && r.Op == op {
			n++
		}
	}
	return n
}

func TestJobLifecycle(t *testing.T) {
	env := newEnv()
	env.put("k1", []byte("trace-image"))
	path := journalPath(t)
	m, j := openManager(t, path, env.config())
	defer func() { m.Stop(); j.Close() }()

	jb, err := m.Submit("summary", "k1", "http://hook")
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, m, jb.ID, StatusDone)
	want, _ := env.exec(context.Background(), "summary", []byte("trace-image"))
	if done.ResultCRC != crc32.ChecksumIEEE(want) {
		t.Fatalf("result CRC %08x, want %08x", done.ResultCRC, crc32.ChecksumIEEE(want))
	}
	waitWebhooks(t, m, 1)
	env.mu.Lock()
	deliveredTo := env.delivered[0]
	released := append([]string(nil), env.released...)
	env.mu.Unlock()
	if !strings.HasPrefix(deliveredTo, "http://hook ") || !strings.Contains(deliveredTo, `"status":"done"`) {
		t.Fatalf("webhook payload: %q", deliveredTo)
	}
	if len(released) != 1 || released[0] != "k1" {
		t.Fatalf("release calls: %v", released)
	}
	if n := countOps(t, path, jb.ID, "done"); n != 1 {
		t.Fatalf("%d done records", n)
	}
	st := m.Stats()
	if st.Accepted != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestJobRetryBackoff: two injected failures, then success — the job
// completes on attempt 3 with two fail records journaled.
func TestJobRetryBackoff(t *testing.T) {
	env := newEnv()
	env.put("k1", []byte("img"))
	env.execErrs.Store(2)
	path := journalPath(t)
	m, j := openManager(t, path, env.config())
	defer func() { m.Stop(); j.Close() }()

	jb, err := m.Submit("gaps", "k1", "")
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, m, jb.ID, StatusDone)
	if done.Attempts != 3 {
		t.Fatalf("attempts=%d want 3", done.Attempts)
	}
	if done.Error != "" {
		t.Fatalf("done job kept error %q", done.Error)
	}
	if n := countOps(t, path, jb.ID, "fail"); n != 2 {
		t.Fatalf("%d fail records, want 2", n)
	}
	if st := m.Stats(); st.Retries != 2 {
		t.Fatalf("retries=%d", st.Retries)
	}
}

// TestJobGiveup: the attempt budget exhausts; the job fails terminally
// with a giveup record, the key is released, and the webhook still fires.
func TestJobGiveup(t *testing.T) {
	env := newEnv()
	env.put("k1", []byte("img"))
	env.execErrs.Store(100)
	path := journalPath(t)
	m, j := openManager(t, path, env.config())
	defer func() { m.Stop(); j.Close() }()

	jb, err := m.Submit("profile", "k1", "http://hook")
	if err != nil {
		t.Fatal(err)
	}
	failed := waitJob(t, m, jb.ID, StatusFailed)
	if failed.Attempts != 3 || !strings.Contains(failed.Error, "injected exec failure") {
		t.Fatalf("failed job: %+v", failed)
	}
	waitWebhooks(t, m, 1)
	if n := countOps(t, path, jb.ID, "giveup"); n != 1 {
		t.Fatalf("%d giveup records", n)
	}
	if n := countOps(t, path, jb.ID, "done"); n != 0 {
		t.Fatal("failed job has a done record")
	}
}

// TestJobFetchMiss: a vanished trace image is terminal — retrying
// cannot restore bytes the disk lost.
func TestJobFetchMiss(t *testing.T) {
	env := newEnv()
	path := journalPath(t)
	m, j := openManager(t, path, env.config())
	defer func() { m.Stop(); j.Close() }()

	jb, err := m.Submit("summary", "missing", "")
	if err != nil {
		t.Fatal(err)
	}
	failed := waitJob(t, m, jb.ID, StatusFailed)
	if !strings.Contains(failed.Error, "unavailable") || failed.Attempts != 1 {
		t.Fatalf("fetch miss: %+v", failed)
	}
}

func TestJobQueueFull(t *testing.T) {
	env := newEnv()
	cfg := env.config()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	// A fetch that blocks keeps the worker busy so the queue backs up.
	block := make(chan struct{})
	cfg.Fetch = func(key string) ([]byte, bool) { <-block; return []byte("x"), true }
	m, j := openManager(t, journalPath(t), cfg)
	defer func() { close(block); m.Stop(); j.Close() }()

	if _, err := m.Submit("summary", "k", ""); err != nil {
		t.Fatal(err)
	}
	var busy bool
	for i := 0; i < 10; i++ {
		if _, err := m.Submit("summary", "k", ""); errors.Is(err, ErrBusy) {
			busy = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !busy {
		t.Fatal("queue never reported ErrBusy")
	}
}

// TestChaosCrashReplayEveryPhase is the heart of the exactly-once story: the
// manager is killed at each job phase in turn, restarted over the same
// journal, and must converge to the same result CRC as an uninterrupted
// run, with exactly one done record and at most one webhook delivery.
func TestChaosCrashReplayEveryPhase(t *testing.T) {
	img := []byte("trace-image-bytes")
	control := newEnv()
	baseline, _ := control.exec(context.Background(), "summary", img)
	wantCRC := crc32.ChecksumIEEE(baseline)

	for _, phase := range []string{PhaseAccept, PhaseStart, PhaseRender, PhaseDone, PhaseWebhook} {
		t.Run(phase, func(t *testing.T) {
			env := newEnv()
			env.put("k1", img)
			path := journalPath(t)

			cfg := env.config()
			killed := make(chan struct{})
			var once sync.Once
			cfg.PhaseHook = func(id, ph string) error {
				if ph == phase {
					once.Do(func() { close(killed) })
					return errors.New("chaos kill")
				}
				return nil
			}
			j1, recs, st, err := OpenJournal(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			m1 := New(j1, recs, st, cfg)
			m1.Start()
			_, submitErr := m1.Submit("summary", "k1", "http://hook")
			select {
			case <-killed:
			case <-time.After(5 * time.Second):
				t.Fatal("kill phase never reached")
			}
			if phase == PhaseAccept && !errors.Is(submitErr, ErrCrashed) {
				t.Fatalf("kill at accept: Submit returned %v", submitErr)
			}
			m1.Stop()
			if !m1.Crashed() {
				t.Fatal("manager did not record the crash")
			}
			j1.Close()

			// Restart: clean manager over the same journal. The job must
			// converge to done with the baseline CRC.
			m2, j2 := openManager(t, path, env.config())
			defer func() { m2.Stop(); j2.Close() }()
			jobs := m2.Jobs()
			if len(jobs) != 1 {
				t.Fatalf("replay adopted %d jobs", len(jobs))
			}
			id := jobs[0].ID
			done := waitJob(t, m2, id, StatusDone)
			if !done.Replayed {
				t.Fatal("replayed job not marked Replayed")
			}
			if done.ResultCRC != wantCRC {
				t.Fatalf("replayed CRC %08x != baseline %08x", done.ResultCRC, wantCRC)
			}
			waitWebhooks(t, m2, 1)
			if n := countOps(t, path, id, "done"); n != 1 {
				t.Fatalf("kill at %s: %d done records, want exactly 1", phase, n)
			}
			if n := countOps(t, path, id, "notified"); n != 1 {
				t.Fatalf("kill at %s: %d notified records", phase, n)
			}
			// A second restart must not re-run or re-notify anything.
			m3, j3 := openManager(t, path, env.config())
			defer func() { m3.Stop(); j3.Close() }()
			time.Sleep(20 * time.Millisecond)
			if n := countOps(t, path, id, "done"); n != 1 {
				t.Fatal("idle restart re-ran a finished job")
			}
			if st := m3.Stats(); st.WebhooksOK != 0 {
				t.Fatal("idle restart re-delivered a webhook")
			}
		})
	}
}

// TestWebhookRedeliveryAfterRestart: a job whose webhook delivery failed
// is redelivered — and only the webhook — on the next boot.
func TestWebhookRedeliveryAfterRestart(t *testing.T) {
	env := newEnv()
	env.put("k1", []byte("img"))
	env.notifyErr.Store(1) // first delivery fails
	path := journalPath(t)
	m1, j1 := openManager(t, path, env.config())

	jb, err := m1.Submit("summary", "k1", "http://hook")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m1, jb.ID, StatusDone)
	deadline := time.Now().Add(5 * time.Second)
	for m1.Stats().WebhookErrs == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if m1.Stats().WebhookErrs != 1 {
		t.Fatalf("first delivery did not fail: %+v", m1.Stats())
	}
	execsBefore := env.execs.Load()
	m1.Stop()
	j1.Close()

	m2, j2 := openManager(t, path, env.config())
	defer func() { m2.Stop(); j2.Close() }()
	waitWebhooks(t, m2, 1)
	if env.execs.Load() != execsBefore {
		t.Fatal("webhook redelivery re-ran the analysis")
	}
	if n := countOps(t, path, jb.ID, "notified"); n != 1 {
		t.Fatalf("%d notified records", n)
	}
}

// TestManagerConcurrentSubmit: many submitters racing workers under
// -race; every job converges and the journal stays consistent.
func TestManagerConcurrentSubmit(t *testing.T) {
	env := newEnv()
	for i := 0; i < 8; i++ {
		env.put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("img-%d", i)))
	}
	cfg := env.config()
	cfg.Workers = 4
	path := journalPath(t)
	m, j := openManager(t, path, cfg)
	defer func() { m.Stop(); j.Close() }()

	var wg sync.WaitGroup
	ids := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				jb, err := m.Submit("summary", fmt.Sprintf("k%d", g), "")
				if err != nil {
					t.Error(err)
					return
				}
				ids <- jb.ID
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		waitJob(t, m, id, StatusDone)
	}
	if st := m.Stats(); st.Accepted != 32 || st.Completed != 32 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSubmitTornJournalCrashes: a torn accept write is a crash — the
// manager must refuse the submission (the 202 was never durable) and
// stop dead, exactly as if the process died mid-fsync.
func TestSubmitTornJournalCrashes(t *testing.T) {
	env := newEnv()
	env.put("k1", []byte("trace-image"))
	path := journalPath(t)
	plan, err := faults.ParseService("torn:1")
	if err != nil {
		t.Fatal(err)
	}
	j, recs, st, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	m := New(j, recs, st, env.config())
	m.Start()
	defer func() { m.Stop(); j.Close() }()

	if _, err := m.Submit("summary", "k1", ""); !errors.Is(err, ErrCrashed) {
		t.Fatalf("submit over torn journal: err = %v, want ErrCrashed", err)
	}
	if !m.Crashed() {
		t.Fatal("manager not crashed after torn write")
	}
	// Crashed managers refuse everything from then on.
	if _, err := m.Submit("summary", "k1", ""); !errors.Is(err, ErrCrashed) {
		t.Fatalf("submit after crash: err = %v, want ErrCrashed", err)
	}
}

// TestSubmitJournalErrorTolerated: a plain write error (disk full, not
// torn) is durability loss but not a crash — Submit reports it, the
// job is withdrawn, and the manager keeps serving.
func TestSubmitJournalErrorTolerated(t *testing.T) {
	env := newEnv()
	env.put("k1", []byte("trace-image"))
	path := journalPath(t)
	plan, err := faults.ParseService("diskfull:0:*")
	if err != nil {
		t.Fatal(err)
	}
	j, recs, st, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	m := New(j, recs, st, env.config())
	m.Start()
	defer func() { m.Stop(); j.Close() }()

	if _, err := m.Submit("summary", "k1", ""); err == nil || errors.Is(err, ErrCrashed) {
		t.Fatalf("submit with failing journal: err = %v, want plain error", err)
	}
	if m.Crashed() {
		t.Fatal("disk-full journal must not read as a crash")
	}
	if st := m.Stats(); st.JournalErrs == 0 {
		t.Fatal("journal error not counted")
	}
	if got := len(m.Jobs()); got != 0 {
		t.Fatalf("non-durable job left in table: %d", got)
	}
}

// TestWebhookRedeliveryAfterReplay: the process died between the done
// record and the webhook (no failed-delivery attempt on record, just a
// missing "notified"). The next boot must deliver the hook exactly once
// without re-running the analysis, and the boot after that must stay
// completely quiet.
func TestWebhookRedeliveryAfterReplay(t *testing.T) {
	path := journalPath(t)
	j, _, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-write the crash-consistent journal: accepted, started, done —
	// and then the lights went out before deliverWebhook ran.
	for _, rec := range []Record{
		{Op: "accept", ID: "j-dead", Kind: "summary", Key: "k1",
			Webhook: "http://hook", MaxAttempts: 3},
		{Op: "start", ID: "j-dead", Attempt: 1},
		{Op: "done", ID: "j-dead", CRC: 0xdeadbeef},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	env := newEnv()
	env.put("k1", []byte("img"))
	m2, j2 := openManager(t, path, env.config())
	waitWebhooks(t, m2, 1)
	jb, ok := m2.Get("j-dead")
	if !ok || jb.Status != StatusDone || jb.ResultCRC != 0xdeadbeef {
		t.Fatalf("replayed job = %+v", jb)
	}
	if !jb.Replayed {
		t.Fatal("job not marked replayed")
	}
	if got := env.execs.Load(); got != 0 {
		t.Fatalf("redelivery ran the analysis %d times, want 0", got)
	}
	m2.Stop()
	j2.Close()
	if n := countOps(t, path, "j-dead", "notified"); n != 1 {
		t.Fatalf("%d notified records, want 1", n)
	}

	// Third boot: the notified record is on disk, so nothing replays.
	m3, j3 := openManager(t, path, env.config())
	defer func() { m3.Stop(); j3.Close() }()
	time.Sleep(20 * time.Millisecond) // give a buggy redelivery time to fire
	if st := m3.Stats(); st.WebhooksOK != 0 || st.Replayed != 0 {
		t.Fatalf("post-notified boot replayed work: %+v", st)
	}
	if got := env.execs.Load(); got != 0 {
		t.Fatalf("post-notified boot ran the analysis %d times, want 0", got)
	}
}
