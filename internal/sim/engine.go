// Package sim implements a deterministic, cooperatively scheduled
// discrete-event simulation kernel.
//
// Model processes are ordinary Go functions run on goroutines, but the
// engine guarantees that at most one process is runnable at any instant:
// a process runs until it blocks on a kernel primitive (Delay, WaitQueue,
// Queue, Resource, ...), at which point control returns to the engine,
// which advances virtual time to the next scheduled wakeup. Ties in wakeup
// time are broken by schedule order, so a given program produces exactly
// the same event sequence on every run.
//
// Virtual time is measured in abstract ticks; the Cell model interprets
// one tick as one 3.2 GHz processor cycle.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
)

// ErrDeadlock is returned by Run when processes are still alive but no
// future wakeup is scheduled, i.e. every live process waits on a condition
// nobody can signal.
var ErrDeadlock = errors.New("sim: deadlock: live processes but no scheduled events")

// ErrStopped is returned by Run when the simulation was halted by Stop.
var ErrStopped = errors.New("sim: stopped")

// panicAbort is the value used to unwind process goroutines when the
// engine shuts down before they finish.
type panicAbort struct{}

// wakeup is a scheduled resumption of a process at a virtual time.
type wakeup struct {
	at   uint64
	seq  uint64 // tie-breaker: schedule order
	proc *Proc
}

type wakeupHeap []wakeup

func (h wakeupHeap) Len() int { return len(h) }
func (h wakeupHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h wakeupHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wakeupHeap) Push(x interface{}) { *h = append(*h, x.(wakeup)) }
func (h *wakeupHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine owns virtual time and the wakeup queue.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     uint64
	seq     uint64
	queue   wakeupHeap
	live    int // processes spawned and not yet finished
	nextID  int
	procs   []*Proc // every spawned process, for shutdown
	stopped bool    // Stop was called
	current *Proc

	// parked is signalled by a process when it has transferred control
	// back to the engine (blocked, finished, or aborted).
	parked chan struct{}

	// panicVal carries a panic out of a process goroutine so Run can
	// re-raise it on the caller's goroutine.
	panicVal interface{}

	// Trace, when non-nil, receives a line per scheduler action (debug).
	Trace func(format string, args ...interface{})
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{parked: make(chan struct{})}
}

// Now returns the current virtual time in ticks.
func (e *Engine) Now() uint64 { return e.now }

// Stop halts the simulation: Run returns ErrStopped after the current
// process blocks. Only meaningful from inside a process.
func (e *Engine) Stop() { e.stopped = true }

// Live returns the number of spawned processes that have not finished.
// Inside a process the count includes the caller.
func (e *Engine) Live() int { return e.live }

// Proc is a simulation process. All kernel primitives that can block take
// the Proc of the calling process; calling them from the wrong goroutine
// corrupts the schedule, so processes must not leak their Proc to other
// goroutines.
type Proc struct {
	eng    *Engine
	id     int
	name   string
	wake   chan struct{}
	done   bool
	killed bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the spawn-order id of the process (0-based).
func (p *Proc) ID() int { return p.id }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() uint64 { return p.eng.now }

// Spawn creates a process that will first run at the current virtual time,
// after all currently runnable work scheduled earlier. fn runs on its own
// goroutine under the engine's cooperative regime.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time, which must be >= Now.
func (e *Engine) SpawnAt(at uint64, name string, fn func(p *Proc)) *Proc {
	if at < e.now {
		panic(fmt.Sprintf("sim: SpawnAt(%d) in the past (now %d)", at, e.now))
	}
	p := &Proc{eng: e, id: e.nextID, name: name, wake: make(chan struct{})}
	e.nextID++
	e.live++
	e.procs = append(e.procs, p)
	e.schedule(p, at)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(panicAbort); ok {
					// Engine shut down; exit quietly.
					e.parked <- struct{}{}
					return
				}
				p.done = true
				e.live--
				// Re-panic on the engine side by stashing the value.
				e.panicVal = r
				e.parked <- struct{}{}
				return
			}
		}()
		<-p.wake // wait for first dispatch
		if p.killed {
			panic(panicAbort{})
		}
		fn(p)
		p.done = true
		e.live--
		e.parked <- struct{}{}
	}()
	return p
}

// schedule enqueues a wakeup for p at time at.
func (e *Engine) schedule(p *Proc, at uint64) {
	e.seq++
	heap.Push(&e.queue, wakeup{at: at, seq: e.seq, proc: p})
}

// dispatch resumes p and blocks until it parks again.
func (e *Engine) dispatch(p *Proc) {
	e.current = p
	p.wake <- struct{}{}
	<-e.parked
	e.current = nil
	if e.panicVal != nil {
		v := e.panicVal
		e.panicVal = nil
		panic(v)
	}
}

// park transfers control from the calling process back to the engine and
// blocks until the engine dispatches the process again.
func (p *Proc) park() {
	p.eng.parked <- struct{}{}
	<-p.wake
	if p.killed {
		panic(panicAbort{})
	}
}

// Delay advances the calling process's local time by d ticks.
func (p *Proc) Delay(d uint64) {
	e := p.eng
	e.schedule(p, e.now+d)
	p.park()
}

// Yield reschedules the calling process at the current time, after any
// other work already scheduled for this instant.
func (p *Proc) Yield() { p.Delay(0) }

// Run drives the simulation until no wakeups remain. It returns nil when
// all processes finished, ErrDeadlock when live processes remain but
// nothing is scheduled, and ErrStopped if Stop was called.
func (e *Engine) Run() error { return e.RunUntil(^uint64(0)) }

// ctxStride is how many dispatches pass between context polls in
// RunContext: the engine dispatches millions of wakeups per host second,
// so a poll every 4096 keeps cancellation latency in the microseconds
// while staying invisible on the profile.
const ctxStride = 4096

// RunContext drives the simulation like Run, additionally polling ctx
// between dispatches (the engine loop runs on the caller's goroutine, so
// the poll is race-free). On cancellation or deadline expiry every live
// process is unwound exactly as Stop does and ctx.Err() is returned, so
// callers can distinguish a wall-clock timeout (context.DeadlineExceeded)
// from a simulated-fault stop (ErrStopped).
func (e *Engine) RunContext(ctx context.Context) error { return e.runUntil(ctx, ^uint64(0)) }

// RunUntil drives the simulation until no wakeups remain or the next
// wakeup would be at a time strictly greater than limit.
func (e *Engine) RunUntil(limit uint64) error { return e.runUntil(nil, limit) }

func (e *Engine) runUntil(ctx context.Context, limit uint64) error {
	for n := 0; len(e.queue) > 0; n++ {
		if e.stopped {
			e.abortAll()
			return ErrStopped
		}
		if ctx != nil && n%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				e.abortAll()
				return err
			}
		}
		next := e.queue[0]
		if next.at > limit {
			e.now = limit
			return nil
		}
		heap.Pop(&e.queue)
		if next.proc.done {
			continue // stale wakeup for a finished process
		}
		if next.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = next.at
		if e.Trace != nil {
			e.Trace("t=%d dispatch %s", e.now, next.proc.name)
		}
		e.dispatch(next.proc)
	}
	if e.live > 0 {
		n := e.live
		stuck := e.stuckNames()
		e.abortAll()
		return fmt.Errorf("%w (%d live: %s)", ErrDeadlock, n, stuck)
	}
	return nil
}

// stuckNames lists the names of live processes, for deadlock diagnostics.
func (e *Engine) stuckNames() string {
	s := ""
	for _, p := range e.procs {
		if p.done {
			continue
		}
		if s != "" {
			s += ", "
		}
		s += p.name
	}
	return s
}

// abortAll unwinds every live process goroutine, whether it is waiting in
// the wakeup queue or parked on a wait queue.
func (e *Engine) abortAll() {
	e.queue = nil
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.killed = true
		p.wake <- struct{}{}
		<-e.parked
	}
}
