package sim

import (
	"errors"
	"testing"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatalf("empty Run: %v", err)
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %d, want 0", e.Now())
	}
}

func TestDelayAdvancesTime(t *testing.T) {
	e := NewEngine()
	var at uint64
	e.Spawn("a", func(p *Proc) {
		p.Delay(100)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Fatalf("time after Delay(100) = %d, want 100", at)
	}
	if e.Now() != 100 {
		t.Fatalf("engine Now = %d, want 100", e.Now())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		for _, n := range []string{"a", "b", "c"} {
			name := n
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					p.Delay(10)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, first[i], want[i], first)
		}
	}
	for trial := 0; trial < 20; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic schedule at trial %d index %d", trial, i)
			}
		}
	}
}

func TestTieBreakBySpawnThenScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	// Both wake at t=5; b scheduled second must run second.
	e.Spawn("a", func(p *Proc) { p.Delay(5); order = append(order, 1) })
	e.Spawn("b", func(p *Proc) { p.Delay(5); order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestSpawnAtFuture(t *testing.T) {
	e := NewEngine()
	var at uint64
	e.SpawnAt(50, "late", func(p *Proc) { at = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 50 {
		t.Fatalf("late proc ran at %d, want 50", at)
	}
}

func TestSpawnAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Delay(10)
		defer func() {
			if recover() == nil {
				t.Error("SpawnAt in the past did not panic")
			}
			// Re-park properly by finishing the process.
		}()
		e.SpawnAt(5, "bad", func(p *Proc) {})
	})
	_ = e.Run()
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	var childAt uint64
	e.Spawn("parent", func(p *Proc) {
		p.Delay(7)
		e.Spawn("child", func(c *Proc) {
			c.Delay(3)
			childAt = c.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 10 {
		t.Fatalf("child finished at %d, want 10", childAt)
	}
}

func TestRunUntilLimit(t *testing.T) {
	e := NewEngine()
	steps := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Delay(10)
			steps++
		}
	})
	if err := e.RunUntil(55); err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Fatalf("steps at t<=55: %d, want 5", steps)
	}
	if e.Now() != 55 {
		t.Fatalf("Now = %d, want 55", e.Now())
	}
	// Resume to completion.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 100 {
		t.Fatalf("steps = %d, want 100", steps)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e)
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Delay(1)
			ticks++
			if ticks == 5 {
				e.Stop()
			}
		}
	})
	err := e.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		p.Delay(1)
		panic("boom payload")
	})
	defer func() {
		r := recover()
		if r != "boom payload" {
			t.Fatalf("recovered %v, want boom payload", r)
		}
	}()
	_ = e.Run()
	t.Fatal("Run returned instead of panicking")
}

func TestYieldOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcIdentity(t *testing.T) {
	e := NewEngine()
	p0 := e.Spawn("first", func(p *Proc) {})
	p1 := e.Spawn("second", func(p *Proc) {})
	if p0.ID() != 0 || p1.ID() != 1 {
		t.Fatalf("IDs = %d,%d want 0,1", p0.ID(), p1.ID())
	}
	if p0.Name() != "first" || p1.Name() != "second" {
		t.Fatalf("names wrong: %q %q", p0.Name(), p1.Name())
	}
	if p0.Engine() != e {
		t.Fatal("Engine() mismatch")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcessesStress(t *testing.T) {
	e := NewEngine()
	const n = 200
	total := 0
	for i := 0; i < n; i++ {
		d := uint64(i % 13)
		e.Spawn("w", func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Delay(d + 1)
			}
			total++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("finished %d, want %d", total, n)
	}
}
