package sim

import "math"

// BandwidthServer models a store-and-forward transfer fabric with a fixed
// number of parallel channels, each of a fixed bandwidth. A transfer holds
// one channel for startup + ceil(bytes * cyclesPerByte) ticks; when all
// channels are busy, transfers queue FIFO. It is used for the Cell EIB data
// rings and the memory-interface controller.
type BandwidthServer struct {
	channels      *Resource
	cyclesPerByte float64
	startup       uint64

	// accounting
	totalBytes     uint64
	totalTransfers uint64
	busyCycles     uint64
}

// NewBandwidthServer creates a server with the given number of parallel
// channels, per-channel bandwidth in bytes per tick, and fixed per-transfer
// startup latency in ticks.
func NewBandwidthServer(e *Engine, channels int, bytesPerCycle float64, startup uint64) *BandwidthServer {
	if bytesPerCycle <= 0 {
		panic("sim: BandwidthServer bytesPerCycle must be positive")
	}
	return &BandwidthServer{
		channels:      NewResource(e, channels),
		cyclesPerByte: 1 / bytesPerCycle,
		startup:       startup,
	}
}

// Duration returns the service time for a transfer of the given size,
// excluding queueing.
func (s *BandwidthServer) Duration(bytes int) uint64 {
	if bytes < 0 {
		panic("sim: negative transfer size")
	}
	return s.startup + uint64(math.Ceil(float64(bytes)*s.cyclesPerByte))
}

// Transfer performs a transfer of the given size on behalf of p: it queues
// for a channel, holds it for the service time, and returns the total ticks
// spent (queueing + service).
func (s *BandwidthServer) Transfer(p *Proc, bytes int) uint64 {
	start := p.Now()
	s.channels.Acquire(p, 1)
	d := s.Duration(bytes)
	p.Delay(d)
	s.channels.Release(1)
	s.totalBytes += uint64(bytes)
	s.totalTransfers++
	s.busyCycles += d
	return p.Now() - start
}

// Stats reports lifetime totals: bytes moved, transfer count, and busy
// channel-cycles.
func (s *BandwidthServer) Stats() (bytes, transfers, busyCycles uint64) {
	return s.totalBytes, s.totalTransfers, s.busyCycles
}
