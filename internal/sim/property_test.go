package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any random mix of processes doing random delays and
// queue/resource operations, the engine terminates, time is monotonic,
// and the same seed reproduces the same final time.
func TestRandomScheduleDeterminismProperty(t *testing.T) {
	runOnce := func(seed int64) (uint64, bool) {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		q := NewQueue(e, 1+rng.Intn(4))
		r := NewResource(e, 1+rng.Intn(3))
		nProcs := 2 + rng.Intn(5)
		nOps := 5 + rng.Intn(30)
		// Producers and consumers are paired so queues always drain.
		items := nOps * nProcs
		e.Spawn("producer", func(p *Proc) {
			for i := 0; i < items; i++ {
				q.Put(p, uint64(i))
				p.Delay(uint64(rng.Intn(50)))
			}
		})
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; i < items; i++ {
				q.Get(p)
				p.Delay(uint64(rng.Intn(50)))
			}
		})
		for i := 0; i < nProcs; i++ {
			delays := make([]uint64, nOps)
			for j := range delays {
				delays[j] = uint64(rng.Intn(200))
			}
			e.Spawn("worker", func(p *Proc) {
				for _, d := range delays {
					r.Acquire(p, 1)
					p.Delay(d)
					r.Release(1)
				}
			})
		}
		var last uint64
		ok := true
		e.Trace = func(format string, args ...interface{}) {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
		}
		if err := e.Run(); err != nil {
			return 0, false
		}
		return e.Now(), ok
	}
	f := func(seed int64) bool {
		t1, ok1 := runOnce(seed)
		t2, ok2 := runOnce(seed)
		return ok1 && ok2 && t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: resource accounting never exceeds capacity and always drains
// to zero.
func TestResourceInvariantProperty(t *testing.T) {
	f := func(seed int64, capRaw, procsRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		procs := int(procsRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource(e, capacity)
		violated := false
		for i := 0; i < procs; i++ {
			n := 1 + rng.Intn(capacity)
			hold := uint64(rng.Intn(100))
			reps := 1 + rng.Intn(10)
			e.Spawn("w", func(p *Proc) {
				for j := 0; j < reps; j++ {
					r.Acquire(p, n)
					if r.InUse() > r.Capacity() {
						violated = true
					}
					p.Delay(hold)
					r.Release(n)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return !violated && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: BandwidthServer conserves bytes and the busy time equals the
// sum of service durations.
func TestBandwidthServerAccountingProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		s := NewBandwidthServer(e, 1+rng.Intn(3), float64(1+rng.Intn(16)), uint64(rng.Intn(100)))
		var wantBytes, wantBusy uint64
		for i := 0; i < n; i++ {
			sz := rng.Intn(10000)
			wantBytes += uint64(sz)
			wantBusy += s.Duration(sz)
			size := sz
			e.Spawn("t", func(p *Proc) { s.Transfer(p, size) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		bytes, transfers, busy := s.Stats()
		return bytes == wantBytes && transfers == uint64(n) && busy == wantBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
