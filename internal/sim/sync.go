package sim

import "fmt"

// WaitQueue is a FIFO list of blocked processes. It is the building block
// for every higher-level primitive: a process calls Wait to park itself,
// and another process calls Signal or Broadcast to schedule waiters at the
// current virtual time, in FIFO order.
type WaitQueue struct {
	eng     *Engine
	waiters []*Proc
}

// NewWaitQueue returns an empty wait queue bound to e.
func NewWaitQueue(e *Engine) *WaitQueue { return &WaitQueue{eng: e} }

// Len reports the number of blocked processes.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks the calling process until a Signal/Broadcast reaches it.
func (q *WaitQueue) Wait(p *Proc) {
	if p.eng != q.eng {
		panic("sim: WaitQueue used across engines")
	}
	q.waiters = append(q.waiters, p)
	p.park()
}

// Signal schedules the oldest waiter (if any) at the current time and
// reports whether a waiter was woken.
func (q *WaitQueue) Signal() bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	q.waiters = q.waiters[1:]
	q.eng.schedule(p, q.eng.now)
	return true
}

// Broadcast wakes all waiters (scheduled FIFO at the current time) and
// returns how many were woken.
func (q *WaitQueue) Broadcast() int {
	n := len(q.waiters)
	for _, p := range q.waiters {
		q.eng.schedule(p, q.eng.now)
	}
	q.waiters = q.waiters[:0]
	return n
}

// Resource is a counting resource with fixed capacity (e.g. MFC command
// queue slots, EIB ring grants). Acquire blocks until n units are free;
// units are granted in request order (no barging), which keeps schedules
// deterministic and fair.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	q        *WaitQueue
	pendingN []int // parallel to q.waiters: units each waiter wants
}

// NewResource returns a resource with the given capacity.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: NewResource capacity must be positive")
	}
	return &Resource{eng: e, capacity: capacity, q: NewWaitQueue(e)}
}

// Capacity returns the total units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the currently held units.
func (r *Resource) InUse() int { return r.inUse }

// TryAcquire acquires n units without blocking and reports success.
// It fails (preserving FIFO fairness) if any process is already queued.
func (r *Resource) TryAcquire(n int) bool {
	if n > r.capacity {
		panic(fmt.Sprintf("sim: TryAcquire(%d) exceeds capacity %d", n, r.capacity))
	}
	if r.q.Len() > 0 || r.inUse+n > r.capacity {
		return false
	}
	r.inUse += n
	return true
}

// Acquire blocks the calling process until n units are available. Grants
// are strictly FIFO: a large request at the head blocks smaller requests
// behind it (no barging), which keeps schedules deterministic.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.capacity {
		panic(fmt.Sprintf("sim: Acquire(%d) exceeds capacity %d", n, r.capacity))
	}
	if r.q.Len() == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.pendingN = append(r.pendingN, n)
	r.q.Wait(p)
	// Release accounted our units before waking us; nothing left to do.
}

// Release returns n units and grants queued requests that now fit, in FIFO
// order. The grant is applied here, before the waiter runs, so capacity can
// never be stolen by a process scheduled in between.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Resource.Release below zero")
	}
	for len(r.pendingN) > 0 && r.inUse+r.pendingN[0] <= r.capacity {
		r.inUse += r.pendingN[0]
		r.pendingN = r.pendingN[1:]
		r.q.Signal()
	}
}

// Queue is a bounded FIFO of uint64 payloads with blocking Put/Get. It
// models hardware mailboxes and token queues. Capacity 0 is rejected (a
// rendezvous channel is not a hardware structure we need).
type Queue struct {
	eng      *Engine
	capacity int
	items    []uint64
	notFull  *WaitQueue
	notEmpty *WaitQueue
}

// NewQueue returns an empty queue with the given capacity (> 0).
func NewQueue(e *Engine, capacity int) *Queue {
	if capacity <= 0 {
		panic("sim: NewQueue capacity must be positive")
	}
	return &Queue{
		eng:      e,
		capacity: capacity,
		notFull:  NewWaitQueue(e),
		notEmpty: NewWaitQueue(e),
	}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.capacity }

// TryPut enqueues v if space is available and reports success.
func (q *Queue) TryPut(v uint64) bool {
	if len(q.items) >= q.capacity {
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return true
}

// Put blocks the calling process until space is available, then enqueues v.
func (q *Queue) Put(p *Proc, v uint64) {
	for len(q.items) >= q.capacity {
		q.notFull.Wait(p)
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
}

// TryGet dequeues the oldest item if present.
func (q *Queue) TryGet() (uint64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, true
}

// Get blocks the calling process until an item is available and returns it.
func (q *Queue) Get(p *Proc) uint64 {
	for len(q.items) == 0 {
		q.notEmpty.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return v
}

// Peek returns the oldest item without removing it.
func (q *Queue) Peek() (uint64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0], true
}

// Event is a one-shot level-triggered flag: Wait returns immediately once
// Set has been called; before that it blocks. Used for completion signals.
type Event struct {
	set bool
	q   *WaitQueue
}

// NewEvent returns an unset event.
func NewEvent(e *Engine) *Event { return &Event{q: NewWaitQueue(e)} }

// IsSet reports whether the event fired.
func (ev *Event) IsSet() bool { return ev.set }

// Set fires the event and wakes all waiters. Idempotent.
func (ev *Event) Set() {
	if ev.set {
		return
	}
	ev.set = true
	ev.q.Broadcast()
}

// Wait blocks until the event is set.
func (ev *Event) Wait(p *Proc) {
	for !ev.set {
		ev.q.Wait(p)
	}
}
