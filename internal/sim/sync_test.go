package sim

import (
	"testing"
	"testing/quick"
)

func TestWaitQueueSignalFIFO(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e)
	var order []string
	for _, n := range []string{"a", "b", "c"} {
		name := n
		e.Spawn(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	e.Spawn("signaller", func(p *Proc) {
		p.Delay(10)
		for q.Signal() {
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestWaitQueueBroadcast(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	e.Spawn("b", func(p *Proc) {
		p.Delay(1)
		if n := q.Broadcast(); n != 5 {
			t.Errorf("Broadcast woke %d, want 5", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestWaitQueueSignalEmpty(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e)
	if q.Signal() {
		t.Fatal("Signal on empty queue reported a wake")
	}
	if q.Broadcast() != 0 {
		t.Fatal("Broadcast on empty queue woke someone")
	}
	if q.Len() != 0 {
		t.Fatal("Len != 0")
	}
}

func TestResourceBasicExclusion(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []string
	for _, n := range []string{"a", "b"} {
		name := n
		e.Spawn(name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name+"+")
			p.Delay(10)
			order = append(order, name+"-")
			r.Release(1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a+", "a-", "b+", "b-"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceFIFOGrantNoBarging(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var order []string
	// holder takes both units for a while.
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 2)
		p.Delay(100)
		r.Release(2)
	})
	// big queues first, asking both units.
	e.Spawn("big", func(p *Proc) {
		p.Delay(1)
		r.Acquire(p, 2)
		order = append(order, "big")
		r.Release(2)
	})
	// small asks one unit after big; must NOT jump ahead.
	e.Spawn("small", func(p *Proc) {
		p.Delay(2)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	if !r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) on empty resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) over capacity succeeded")
	}
	r.Release(1)
	if r.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", r.InUse())
	}
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) with free unit failed")
	}
	if r.Capacity() != 2 {
		t.Fatalf("Capacity = %d", r.Capacity())
	}
}

func TestResourceReleaseBelowZeroPanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release below zero did not panic")
		}
	}()
	r.Release(1)
}

func TestResourceOverCapacityPanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("TryAcquire over capacity did not panic")
		}
	}()
	r.TryAcquire(2)
}

func TestResourceCounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 3)
	maxInUse := 0
	for i := 0; i < 10; i++ {
		e.Spawn("w", func(p *Proc) {
			r.Acquire(p, 1)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Delay(5)
			r.Release(1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInUse != 3 {
		t.Fatalf("max concurrency = %d, want 3", maxInUse)
	}
	if r.InUse() != 0 {
		t.Fatalf("leaked units: %d", r.InUse())
	}
}

func TestQueuePutGetOrdering(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 4)
	var got []uint64
	e.Spawn("producer", func(p *Proc) {
		for i := uint64(0); i < 10; i++ {
			q.Put(p, i)
			p.Delay(1)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, q.Get(p))
			p.Delay(3)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 1)
	var putDone uint64
	e.Spawn("producer", func(p *Proc) {
		q.Put(p, 1) // fits
		q.Put(p, 2) // blocks until consumer drains
		putDone = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Delay(100)
		if v := q.Get(p); v != 1 {
			t.Errorf("Get = %d, want 1", v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone != 100 {
		t.Fatalf("second Put completed at %d, want 100", putDone)
	}
}

func TestQueueBlocksWhenEmpty(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 4)
	var getDone uint64
	e.Spawn("consumer", func(p *Proc) {
		if v := q.Get(p); v != 42 {
			t.Errorf("Get = %d, want 42", v)
		}
		getDone = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Delay(77)
		q.Put(p, 42)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if getDone != 77 {
		t.Fatalf("Get completed at %d, want 77", getDone)
	}
}

func TestQueueTryOps(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 2)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty succeeded")
	}
	if !q.TryPut(7) || !q.TryPut(8) {
		t.Fatal("TryPut failed with space available")
	}
	if q.TryPut(9) {
		t.Fatal("TryPut on full succeeded")
	}
	if v, ok := q.Peek(); !ok || v != 7 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	if v, ok := q.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
	if q.Len() != 1 || q.Cap() != 2 {
		t.Fatalf("Len/Cap = %d/%d", q.Len(), q.Cap())
	}
}

func TestQueueZeroCapacityPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("NewQueue(0) did not panic")
		}
	}()
	NewQueue(e, 0)
}

func TestEventSetBeforeWait(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	ev.Set()
	ev.Set() // idempotent
	var at uint64
	e.Spawn("w", func(p *Proc) {
		p.Delay(5)
		ev.Wait(p) // returns immediately
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Fatalf("Wait on set event delayed: at=%d", at)
	}
	if !ev.IsSet() {
		t.Fatal("IsSet = false")
	}
}

func TestEventWaitThenSet(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	done := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			ev.Wait(p)
			if p.Now() != 30 {
				t.Errorf("woke at %d, want 30", p.Now())
			}
			done++
		})
	}
	e.Spawn("setter", func(p *Proc) {
		p.Delay(30)
		ev.Set()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
}

// Property: for any set of producer/consumer item counts, every produced
// item is consumed exactly once and in order per producer.
func TestQueueConservationProperty(t *testing.T) {
	f := func(nItems uint8, capacity uint8) bool {
		n := int(nItems%50) + 1
		c := int(capacity%8) + 1
		e := NewEngine()
		q := NewQueue(e, c)
		var got []uint64
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < n; i++ {
				q.Put(p, uint64(i))
			}
		})
		e.Spawn("c", func(p *Proc) {
			for i := 0; i < n; i++ {
				got = append(got, q.Get(p))
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthServerDuration(t *testing.T) {
	e := NewEngine()
	s := NewBandwidthServer(e, 1, 8, 100) // 8 B/cycle, 100 startup
	if d := s.Duration(0); d != 100 {
		t.Fatalf("Duration(0) = %d, want 100", d)
	}
	if d := s.Duration(16384); d != 100+2048 {
		t.Fatalf("Duration(16K) = %d, want 2148", d)
	}
	if d := s.Duration(1); d != 101 {
		t.Fatalf("Duration(1) = %d, want 101 (ceil)", d)
	}
}

func TestBandwidthServerContention(t *testing.T) {
	e := NewEngine()
	s := NewBandwidthServer(e, 1, 1, 0) // 1 B/cycle, serial
	var ends []uint64
	for i := 0; i < 3; i++ {
		e.Spawn("t", func(p *Proc) {
			s.Transfer(p, 100)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	bytes, transfers, busy := s.Stats()
	if bytes != 300 || transfers != 3 || busy != 300 {
		t.Fatalf("stats = %d,%d,%d", bytes, transfers, busy)
	}
}

func TestBandwidthServerParallelChannels(t *testing.T) {
	e := NewEngine()
	s := NewBandwidthServer(e, 2, 1, 0)
	var ends []uint64
	for i := 0; i < 4; i++ {
		e.Spawn("t", func(p *Proc) {
			s.Transfer(p, 100)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two channels: pairs complete at 100 and 200.
	want := []uint64{100, 100, 200, 200}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestBandwidthServerNegativeSizePanics(t *testing.T) {
	e := NewEngine()
	s := NewBandwidthServer(e, 1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	s.Duration(-1)
}
