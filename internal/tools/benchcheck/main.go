// benchcheck is the benchmark regression gate: it runs the committed
// reference benchmarks (trace load, interval profile, critical path,
// gap hunting, trace differencing, cycle detection, align-mode cycle
// diffing, end-to-end TAD summary) with
// -benchmem, parses the ns/op, B/op and allocs/op figures, and compares
// all three against BENCH_baseline.json. A result more than -tolerance
// worse than its baseline entry on any metric fails the run; a package
// that regresses is re-run once first, so a single noisy scheduling
// hiccup does not fail CI. `-update` rewrites the baseline from a fresh
// run instead of comparing.
//
// The baseline file keeps separate sections for -short and full-size
// runs (the trace sizes differ by 10x), so `make ci` can gate on the
// cheap short variant while `make bench-check` gates the real sizes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// suite lists one `go test -bench` invocation to measure.
type suite struct {
	pkg   string
	bench string // -bench regexp
}

// suites are the committed reference benchmarks. The LargeTrace family
// lives in the repo-root package; BenchmarkTADSummary is the service's
// end-to-end request path.
var suites = []suite{
	{".", "^(BenchmarkLoadLargeTrace|BenchmarkLoadStream|BenchmarkProfileLargeTrace|BenchmarkCritPathLargeTrace|BenchmarkGapsLargeTrace|BenchmarkDiffLargeTrace|BenchmarkCyclesLargeTrace|BenchmarkDiffAlignLargeTrace)$"},
	{"./cmd/pdt-tad", "^BenchmarkTADSummary$"},
}

// metrics is one benchmark's measured figures. BOp/AllocsOp are -1 when
// the benchmark did not report allocations (no b.ReportAllocs call);
// such entries gate on time only.
type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// baseline is the committed shape of BENCH_baseline.json.
type baseline struct {
	// Tolerance is the allowed fractional regression on any metric
	// before failing (0.25 = fail past +25%); -tolerance overrides
	// when set.
	Tolerance float64 `json:"tolerance"`
	// Short and Full map benchmark name (without the Benchmark prefix
	// or the -GOMAXPROCS suffix) to its measured metrics.
	Short map[string]metrics `json:"short"`
	Full  map[string]metrics `json:"full"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
// "BenchmarkLoadLargeTrace/parallel-8  5  1234567 ns/op  12 MB/s  345 B/op  6 allocs/op".
// The MB/s column is optional, as are the allocation columns.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// parseBench extracts name → metrics from `go test -bench` output. The
// "Benchmark" prefix and the trailing -N GOMAXPROCS suffix are stripped
// so names stay stable across hosts.
func parseBench(out string) map[string]metrics {
	res := make(map[string]metrics)
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		got := metrics{NsOp: ns, BOp: -1, AllocsOp: -1}
		if m[4] != "" {
			if b, err := strconv.ParseFloat(m[4], 64); err == nil {
				got.BOp = b
			}
			if a, err := strconv.ParseFloat(m[5], 64); err == nil {
				got.AllocsOp = a
			}
		}
		res[strings.TrimPrefix(m[1], "Benchmark")] = got
	}
	return res
}

// runSuite executes one benchmark package and returns its parsed results.
func runSuite(s suite, short bool, benchtime string) (map[string]metrics, error) {
	args := []string{"test", "-run", "^$", "-bench", s.bench, "-benchmem", "-benchtime", benchtime}
	if short {
		args = append(args, "-short")
	}
	args = append(args, s.pkg)
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return parseBench(string(out)), nil
}

// worse reports whether got regressed past base by more than tol.
// Baselines at or below zero gate nothing (unreported metrics are -1;
// a 0 B/op baseline leaves nothing meaningful to scale by).
func worse(base, got, tol float64) bool {
	return base > 0 && got > base*(1+tol)
}

// compare reports every metric of got that regressed past base by more
// than tol, and every baseline entry missing from got.
func compare(base, got map[string]metrics, tol float64) []string {
	var bad []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base[name]
		m, ok := got[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: in baseline but not measured (renamed or deleted?)", name))
			continue
		}
		if worse(want.NsOp, m.NsOp, tol) {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%, limit +%.0f%%)",
				name, m.NsOp, want.NsOp, 100*(m.NsOp/want.NsOp-1), 100*tol))
		}
		if worse(want.BOp, m.BOp, tol) {
			bad = append(bad, fmt.Sprintf("%s: %.0f B/op vs baseline %.0f (%+.1f%%, limit +%.0f%%)",
				name, m.BOp, want.BOp, 100*(m.BOp/want.BOp-1), 100*tol))
		}
		if worse(want.AllocsOp, m.AllocsOp, tol) {
			bad = append(bad, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (%+.1f%%, limit +%.0f%%)",
				name, m.AllocsOp, want.AllocsOp, 100*(m.AllocsOp/want.AllocsOp-1), 100*tol))
		}
	}
	return bad
}

// options carries the parsed command line.
type options struct {
	short     bool
	update    bool
	baseline  string
	tolerance float64
	benchtime string
}

func main() {
	var o options
	flag.BoolVar(&o.short, "short", false, "run the -short benchmark sizes and gate on the baseline's short section")
	flag.BoolVar(&o.update, "update", false, "rewrite the baseline from a fresh run (both sections) instead of comparing")
	flag.StringVar(&o.baseline, "baseline", "BENCH_baseline.json", "baseline file")
	flag.Float64Var(&o.tolerance, "tolerance", 0, "allowed fractional regression (0 = use the baseline file's tolerance)")
	flag.StringVar(&o.benchtime, "benchtime", "10x", "-benchtime per benchmark")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	measure := func(shortMode bool) (map[string]metrics, error) {
		all := make(map[string]metrics)
		for _, s := range suites {
			res, err := runSuite(s, shortMode, o.benchtime)
			if err != nil {
				return nil, err
			}
			if len(res) == 0 {
				return nil, fmt.Errorf("%s: no benchmark results parsed", s.pkg)
			}
			for k, v := range res {
				all[k] = v
			}
		}
		return all, nil
	}

	if o.update {
		b := baseline{Tolerance: 0.25}
		if o.tolerance > 0 {
			b.Tolerance = o.tolerance
		}
		var err error
		if b.Short, err = measure(true); err != nil {
			return err
		}
		if b.Full, err = measure(false); err != nil {
			return err
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.baseline, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline rewritten: %s (%d short + %d full entries)\n",
			o.baseline, len(b.Short), len(b.Full))
		return nil
	}

	data, err := os.ReadFile(o.baseline)
	if err != nil {
		return fmt.Errorf("reading baseline (run with -update to create): %w", err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return fmt.Errorf("parsing %s: %w", o.baseline, err)
	}
	want := b.Full
	section := "full"
	if o.short {
		want = b.Short
		section = "short"
	}
	if len(want) == 0 {
		return fmt.Errorf("%s has no %q section (re-run with -update)", o.baseline, section)
	}
	tol := b.Tolerance
	if o.tolerance > 0 {
		tol = o.tolerance
	}
	if tol <= 0 {
		tol = 0.25
	}

	got, err := measure(o.short)
	if err != nil {
		return err
	}
	bad := compare(want, got, tol)
	// Up to three retries: benchmarks share the host with the rest of CI
	// (and, on virtualized runners, with other tenants), so a noisy run
	// or two must not fail the gate. Keep the best observation per
	// metric — a genuine regression stays slow on every attempt, a load
	// burst does not.
	for attempt := 0; len(bad) > 0 && attempt < 3; attempt++ {
		fmt.Printf("possible regression, re-running to damp noise:\n  %s\n",
			strings.Join(bad, "\n  "))
		again, err := measure(o.short)
		if err != nil {
			return err
		}
		for k, v := range again {
			cur, ok := got[k]
			if !ok {
				got[k] = v
				continue
			}
			if v.NsOp < cur.NsOp {
				cur.NsOp = v.NsOp
			}
			if v.BOp >= 0 && (cur.BOp < 0 || v.BOp < cur.BOp) {
				cur.BOp = v.BOp
			}
			if v.AllocsOp >= 0 && (cur.AllocsOp < 0 || v.AllocsOp < cur.AllocsOp) {
				cur.AllocsOp = v.AllocsOp
			}
			got[k] = cur
		}
		bad = compare(want, got, tol)
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchmark regression (%s sizes):\n  %s", section, strings.Join(bad, "\n  "))
	}
	fmt.Printf("benchcheck ok: %d benchmarks within +%.0f%% of %s (%s sizes)\n",
		len(want), 100*tol, o.baseline, section)
	return nil
}
