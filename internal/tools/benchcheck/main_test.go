package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `
goos: linux
goarch: amd64
BenchmarkLoadLargeTrace/parallel-8        	       5	  12345678 ns/op	 512.34 MB/s	 1000 B/op	      25 allocs/op
BenchmarkLoadLargeTrace/serial-8          	       5	  23456789 ns/op
BenchmarkTADSummary/cold                  	      10	   9876543 ns/op	  2048 B/op	      12 allocs/op
benchmark output noise: 1234 ns/op should not match
PASS
ok  	github.com/celltrace/pdt	1.234s
`
	got := parseBench(out)
	want := map[string]metrics{
		"LoadLargeTrace/parallel": {NsOp: 12345678, BOp: 1000, AllocsOp: 25},
		"LoadLargeTrace/serial":   {NsOp: 23456789, BOp: -1, AllocsOp: -1},
		"TADSummary/cold":         {NsOp: 9876543, BOp: 2048, AllocsOp: 12},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseBench = %v, want %v", got, want)
	}
}

func TestParseBenchFractionalNsop(t *testing.T) {
	got := parseBench("BenchmarkX/fast-16   1000000   123.4 ns/op\n")
	if got["X/fast"].NsOp != 123.4 {
		t.Fatalf("parseBench fractional = %v", got)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]metrics{
		"a": {NsOp: 1000, BOp: 100, AllocsOp: 10},
		"b": {NsOp: 1000, BOp: -1, AllocsOp: -1},
		"c": {NsOp: 1000, BOp: 100, AllocsOp: 10},
	}
	got := map[string]metrics{
		"a": {NsOp: 1200, BOp: 120, AllocsOp: 12}, // +20% on all: inside a 25% tolerance
		"b": {NsOp: 1300, BOp: 999, AllocsOp: 99}, // +30% time: regression; allocs unbaselined
		// c missing entirely
	}
	bad := compare(base, got, 0.25)
	if len(bad) != 2 {
		t.Fatalf("compare flagged %d entries, want 2: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0], "b:") || !strings.Contains(bad[0], "+30.0%") {
		t.Errorf("regression line wrong: %q", bad[0])
	}
	if !strings.Contains(bad[1], "c:") || !strings.Contains(bad[1], "not measured") {
		t.Errorf("missing-benchmark line wrong: %q", bad[1])
	}
	clean := map[string]metrics{
		"a": {NsOp: 900, BOp: 100, AllocsOp: 10},
		"b": {NsOp: 1000, BOp: -1, AllocsOp: -1},
		"c": {NsOp: 1249, BOp: 124, AllocsOp: 12},
	}
	if bad = compare(base, clean, 0.25); len(bad) != 0 {
		t.Fatalf("clean run flagged: %v", bad)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := map[string]metrics{"a": {NsOp: 1000, BOp: 100, AllocsOp: 10}}
	got := map[string]metrics{"a": {NsOp: 1000, BOp: 200, AllocsOp: 20}}
	bad := compare(base, got, 0.25)
	if len(bad) != 2 {
		t.Fatalf("compare flagged %d entries, want B/op and allocs/op: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0], "B/op") || !strings.Contains(bad[1], "allocs/op") {
		t.Errorf("wrong metrics flagged: %v", bad)
	}
	// A benchmark that newly reports allocations against a baseline
	// without them (-1) must not be flagged on the alloc metrics.
	base = map[string]metrics{"a": {NsOp: 1000, BOp: -1, AllocsOp: -1}}
	if bad = compare(base, got, 0.25); len(bad) != 0 {
		t.Fatalf("unbaselined alloc metrics flagged: %v", bad)
	}
}
