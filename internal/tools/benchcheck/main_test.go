package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `
goos: linux
goarch: amd64
BenchmarkLoadLargeTrace/parallel-8        	       5	  12345678 ns/op	 512.34 MB/s	 1000 B/op
BenchmarkLoadLargeTrace/serial-8          	       5	  23456789 ns/op
BenchmarkTADSummary/cold                  	      10	   9876543 ns/op
benchmark output noise: 1234 ns/op should not match
PASS
ok  	github.com/celltrace/pdt	1.234s
`
	got := parseBench(out)
	want := map[string]float64{
		"LoadLargeTrace/parallel": 12345678,
		"LoadLargeTrace/serial":   23456789,
		"TADSummary/cold":         9876543,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseBench = %v, want %v", got, want)
	}
}

func TestParseBenchFractionalNsop(t *testing.T) {
	got := parseBench("BenchmarkX/fast-16   1000000   123.4 ns/op\n")
	if got["X/fast"] != 123.4 {
		t.Fatalf("parseBench fractional = %v", got)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{"a": 1000, "b": 1000, "c": 1000}
	got := map[string]float64{
		"a": 1200, // +20%: inside a 25% tolerance
		"b": 1300, // +30%: regression
		// c missing entirely
	}
	bad := compare(base, got, 0.25)
	if len(bad) != 2 {
		t.Fatalf("compare flagged %d entries, want 2: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0], "b:") || !strings.Contains(bad[0], "+30.0%") {
		t.Errorf("regression line wrong: %q", bad[0])
	}
	if !strings.Contains(bad[1], "c:") || !strings.Contains(bad[1], "not measured") {
		t.Errorf("missing-benchmark line wrong: %q", bad[1])
	}
	if bad = compare(base, map[string]float64{"a": 900, "b": 1000, "c": 1249}, 0.25); len(bad) != 0 {
		t.Fatalf("clean run flagged: %v", bad)
	}
}
