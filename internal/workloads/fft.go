package workloads

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/cmplx"

	"github.com/celltrace/pdt/internal/cell"
)

// FFT is the batched 1-D complex FFT workload (the shape of the SDK's
// FFT16M sample): Batches transforms of PointsN complex64 values each,
// stored interleaved (re, im float32). Batches are claimed statically
// round-robin by the SPEs; each batch is DMA'd into local store, solved
// in place with an iterative radix-2 transform, and DMA'd back.
type FFT struct {
	PointsN int // points per transform, power of two
	Batches int
	Seed    int

	dataEA uint64
	ref    [][]complex128
}

// NewFFT returns the default 64-batch 1024-point configuration.
func NewFFT() *FFT { return &FFT{PointsN: 1024, Batches: 64, Seed: 3} }

func (w *FFT) Name() string { return "fft" }

func (w *FFT) Description() string {
	return "batched 1-D complex float32 FFT over SPEs (radix-2, in-place)"
}

func (w *FFT) Configure(params map[string]string) error {
	if err := checkKnown(params, "n", "batches", "seed"); err != nil {
		return err
	}
	if err := intParam(params, "n", &w.PointsN); err != nil {
		return err
	}
	if err := intParam(params, "batches", &w.Batches); err != nil {
		return err
	}
	if err := intParam(params, "seed", &w.Seed); err != nil {
		return err
	}
	if w.PointsN < 4 || w.PointsN&(w.PointsN-1) != 0 {
		return fmt.Errorf("fft: n=%d must be a power of two >= 4", w.PointsN)
	}
	if w.batchBytes() > 64*cell.KiB {
		return fmt.Errorf("fft: batch of %d bytes does not fit local store budget", w.batchBytes())
	}
	if w.Batches <= 0 {
		return fmt.Errorf("fft: batches must be positive")
	}
	return nil
}

func (w *FFT) Params() map[string]string {
	return map[string]string{
		"n": fmt.Sprint(w.PointsN), "batches": fmt.Sprint(w.Batches), "seed": fmt.Sprint(w.Seed),
	}
}

func (w *FFT) batchBytes() int { return w.PointsN * 8 }

func (w *FFT) batchEA(b int) uint64 { return w.dataEA + uint64(b*w.batchBytes()) }

func (w *FFT) Prepare(m *cell.Machine) error {
	w.dataEA = m.Alloc(w.Batches*w.batchBytes(), 128)
	w.ref = make([][]complex128, w.Batches)
	vals := make([]float32, 2*w.PointsN)
	for b := 0; b < w.Batches; b++ {
		lcgFloats(vals, uint32(w.Seed)+uint32(b)*13)
		w.ref[b] = make([]complex128, w.PointsN)
		for i := 0; i < w.PointsN; i++ {
			binary.LittleEndian.PutUint32(m.Mem()[w.batchEA(b)+uint64(8*i):], math.Float32bits(vals[2*i]))
			binary.LittleEndian.PutUint32(m.Mem()[w.batchEA(b)+uint64(8*i+4):], math.Float32bits(vals[2*i+1]))
			w.ref[b][i] = complex(float64(vals[2*i]), float64(vals[2*i+1]))
		}
		// Reference result: direct recursive FFT in float64.
		w.ref[b] = refFFT(w.ref[b])
	}

	m.RunMain(func(h cell.Host) {
		nspe := h.NumSPEs()
		var hs []*cell.SPEHandle
		for s := 0; s < nspe; s++ {
			spe := s
			hs = append(hs, h.Run(spe, "fft", func(spu cell.SPU) uint32 {
				w.speMain(spu, spe, nspe)
				return 0
			}))
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("fft: SPE exited with %d", code))
			}
		}
	})
	return nil
}

func (w *FFT) speMain(spu cell.SPU, spe, nspe int) {
	bb := w.batchBytes()
	ls := spu.LS()
	re := make([]float32, w.PointsN)
	im := make([]float32, w.PointsN)
	logN := 0
	for 1<<logN < w.PointsN {
		logN++
	}
	for b := spe; b < w.Batches; b += nspe {
		// A batch can exceed the 16 KiB DMA limit: stream it in chunks.
		for off := 0; off < bb; off += cell.MaxDMASize {
			sz := min(cell.MaxDMASize, bb-off)
			spu.Get(off, w.batchEA(b)+uint64(off), sz, 0)
		}
		spu.WaitTagAll(1)
		for i := 0; i < w.PointsN; i++ {
			re[i] = math.Float32frombits(binary.LittleEndian.Uint32(ls[8*i:]))
			im[i] = math.Float32frombits(binary.LittleEndian.Uint32(ls[8*i+4:]))
		}
		fftInPlace(re, im)
		// ~5*N*log2(N) flops for a radix-2 complex transform.
		spu.Compute(flopCycles(5 * uint64(w.PointsN) * uint64(logN)))
		for i := 0; i < w.PointsN; i++ {
			binary.LittleEndian.PutUint32(ls[8*i:], math.Float32bits(re[i]))
			binary.LittleEndian.PutUint32(ls[8*i+4:], math.Float32bits(im[i]))
		}
		for off := 0; off < bb; off += cell.MaxDMASize {
			sz := min(cell.MaxDMASize, bb-off)
			spu.Put(off, w.batchEA(b)+uint64(off), sz, 1)
		}
		spu.WaitTagAll(1 << 1)
	}
}

// fftInPlace is an iterative radix-2 Cooley-Tukey transform.
func fftInPlace(re, im []float32) {
	n := len(re)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wr := float32(math.Cos(ang))
		wi := float32(math.Sin(ang))
		for start := 0; start < n; start += length {
			cr, ci := float32(1), float32(0)
			for k := 0; k < length/2; k++ {
				i0, i1 := start+k, start+k+length/2
				ur, ui := re[i0], im[i0]
				vr := re[i1]*cr - im[i1]*ci
				vi := re[i1]*ci + im[i1]*cr
				re[i0], im[i0] = ur+vr, ui+vi
				re[i1], im[i1] = ur-vr, ui-vi
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

// refFFT is the float64 reference transform (recursive).
func refFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 1 {
		return x
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i], odd[i] = x[2*i], x[2*i+1]
	}
	even, odd = refFFT(even), refFFT(odd)
	out := make([]complex128, n)
	for k := 0; k < n/2; k++ {
		t := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n))) * odd[k]
		out[k] = even[k] + t
		out[k+n/2] = even[k] - t
	}
	return out
}

func (w *FFT) Verify(m *cell.Machine) error {
	for b := 0; b < w.Batches; b++ {
		for i := 0; i < w.PointsN; i++ {
			gr := float64(math.Float32frombits(binary.LittleEndian.Uint32(m.Mem()[w.batchEA(b)+uint64(8*i):])))
			gi := float64(math.Float32frombits(binary.LittleEndian.Uint32(m.Mem()[w.batchEA(b)+uint64(8*i+4):])))
			want := w.ref[b][i]
			scale := 1 + cmplx.Abs(want)
			if math.Abs(gr-real(want)) > 1e-2*scale || math.Abs(gi-imag(want)) > 1e-2*scale {
				return fmt.Errorf("fft: batch %d point %d = (%g,%g), want (%g,%g)",
					b, i, gr, gi, real(want), imag(want))
			}
		}
	}
	return nil
}
