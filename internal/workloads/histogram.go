package workloads

import (
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
)

// Histogram computes a 256-bin byte histogram of a large input buffer.
// SPEs stream 16 KiB chunks of their partition into local store and count
// locally; partial results are merged either with atomic adds on a shared
// table (Reduce="atomic") or by DMA-ing partials back for a PPE-side
// reduction (Reduce="ppe") — a gather/reduce ablation.
type Histogram struct {
	Size   int    // input bytes
	Reduce string // "atomic" or "ppe"
	Seed   int

	inEA      uint64
	globalEA  uint64 // 256 x 8-byte bins (atomic mode + final result)
	partialEA uint64 // per-SPE partial tables (ppe mode)
}

// NewHistogram returns the default 4 MiB atomic-reduce configuration.
func NewHistogram() *Histogram { return &Histogram{Size: 4 * cell.MiB, Reduce: "atomic", Seed: 9} }

func (w *Histogram) Name() string { return "histogram" }

func (w *Histogram) Description() string {
	return "256-bin byte histogram; atomic vs PPE-side reduction"
}

func (w *Histogram) Configure(params map[string]string) error {
	if err := checkKnown(params, "size", "reduce", "seed"); err != nil {
		return err
	}
	if err := intParam(params, "size", &w.Size); err != nil {
		return err
	}
	if err := intParam(params, "seed", &w.Seed); err != nil {
		return err
	}
	stringParam(params, "reduce", &w.Reduce)
	if w.Size <= 0 || w.Size%16 != 0 {
		return fmt.Errorf("histogram: size %d must be a positive multiple of 16", w.Size)
	}
	if w.Reduce != "atomic" && w.Reduce != "ppe" {
		return fmt.Errorf("histogram: reduce must be atomic or ppe, got %q", w.Reduce)
	}
	return nil
}

func (w *Histogram) Params() map[string]string {
	return map[string]string{
		"size": fmt.Sprint(w.Size), "reduce": w.Reduce, "seed": fmt.Sprint(w.Seed),
	}
}

const histBins = 256

func (w *Histogram) Prepare(m *cell.Machine) error {
	w.inEA = m.Alloc(w.Size, 128)
	lcg(m.Mem()[w.inEA:w.inEA+uint64(w.Size)], uint32(w.Seed))
	w.globalEA = m.Alloc(histBins*8, 128)
	for b := 0; b < histBins; b++ {
		m.WriteWord64(w.globalEA+uint64(8*b), 0)
	}
	nspe := m.NumSPEs()
	w.partialEA = m.Alloc(nspe*histBins*8, 128)

	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for s := 0; s < nspe; s++ {
			spe := s
			hs = append(hs, h.Run(spe, "histogram", func(spu cell.SPU) uint32 {
				w.speMain(spu, spe, nspe)
				return 0
			}))
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("histogram: SPE exited with %d", code))
			}
		}
		if w.Reduce == "ppe" {
			// Merge the per-SPE partial tables on the PPE.
			for spe := 0; spe < nspe; spe++ {
				base := w.partialEA + uint64(spe*histBins*8)
				for b := 0; b < histBins; b++ {
					cur := h.Machine().ReadWord64(w.globalEA + uint64(8*b))
					h.Machine().WriteWord64(w.globalEA+uint64(8*b),
						cur+h.Machine().ReadWord64(base+uint64(8*b)))
				}
				h.Compute(uint64(histBins) * 4)
			}
		}
	})
	return nil
}

func (w *Histogram) speMain(spu cell.SPU, spe, nspe int) {
	// Partition on 16-byte boundaries.
	units := w.Size / 16
	u0, u1 := partition(units, nspe, spe)
	start, end := u0*16, u1*16
	ls := spu.LS()
	var local [histBins]uint64
	for off := start; off < end; off += cell.MaxDMASize {
		sz := min(cell.MaxDMASize, end-off)
		spu.Get(0, w.inEA+uint64(off), sz, 0)
		spu.WaitTagAll(1)
		for _, b := range ls[:sz] {
			local[b]++
		}
		spu.Compute(uint64(sz)) // ~1 cycle/byte counting
	}
	switch w.Reduce {
	case "atomic":
		for b := 0; b < histBins; b++ {
			if local[b] != 0 {
				spu.AtomicAdd(w.globalEA+uint64(8*b), local[b])
			}
		}
	case "ppe":
		// Serialize the local table into LS and PUT it to the partial
		// region (big-endian to match the atomic word layout).
		for b := 0; b < histBins; b++ {
			v := local[b]
			for i := 0; i < 8; i++ {
				ls[8*b+i] = byte(v >> uint(56-8*i))
			}
		}
		spu.Put(0, w.partialEA+uint64(spe*histBins*8), histBins*8, 1)
		spu.WaitTagAll(1 << 1)
	}
}

func (w *Histogram) Verify(m *cell.Machine) error {
	var want [histBins]uint64
	for _, b := range m.Mem()[w.inEA : w.inEA+uint64(w.Size)] {
		want[b]++
	}
	for b := 0; b < histBins; b++ {
		if got := m.ReadWord64(w.globalEA + uint64(8*b)); got != want[b] {
			return fmt.Errorf("histogram: bin %d = %d, want %d", b, got, want[b])
		}
	}
	return nil
}
