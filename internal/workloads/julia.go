package workloads

import (
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/cellsync"
)

// Julia renders a Julia-set escape-time image, one byte of iteration count
// per pixel, distributing rows either statically (contiguous row blocks
// per SPE) or dynamically (an atomic work queue). Rows crossing the
// fractal interior iterate far longer than rows in the escape region, so
// static partitioning is badly imbalanced — the paper's load-balancing
// use case, made visible by per-SPE busy times in the trace.
type Julia struct {
	W, H    int
	MaxIter int
	Mode    string // "static" or "dynamic"

	outEA uint64
	wq    *cellsync.WorkQueue
}

// NewJulia returns the default 512x512 static renderer.
func NewJulia() *Julia { return &Julia{W: 512, H: 512, MaxIter: 200, Mode: "static"} }

func (w *Julia) Name() string { return "julia" }

func (w *Julia) Description() string {
	return "Julia-set renderer; static vs dynamic (work queue) row partitioning"
}

func (w *Julia) Configure(params map[string]string) error {
	if err := checkKnown(params, "w", "h", "maxiter", "mode"); err != nil {
		return err
	}
	if err := intParam(params, "w", &w.W); err != nil {
		return err
	}
	if err := intParam(params, "h", &w.H); err != nil {
		return err
	}
	if err := intParam(params, "maxiter", &w.MaxIter); err != nil {
		return err
	}
	stringParam(params, "mode", &w.Mode)
	if w.W <= 0 || w.W%16 != 0 {
		return fmt.Errorf("julia: width %d must be a positive multiple of 16", w.W)
	}
	if w.W > cell.MaxDMASize {
		return fmt.Errorf("julia: width %d exceeds one-row DMA limit", w.W)
	}
	if w.H <= 0 || w.MaxIter <= 0 || w.MaxIter > 255 {
		return fmt.Errorf("julia: h and maxiter must be positive (maxiter <= 255)")
	}
	if w.Mode != "static" && w.Mode != "dynamic" {
		return fmt.Errorf("julia: mode must be static or dynamic, got %q", w.Mode)
	}
	return nil
}

func (w *Julia) Params() map[string]string {
	return map[string]string{
		"w": fmt.Sprint(w.W), "h": fmt.Sprint(w.H),
		"maxiter": fmt.Sprint(w.MaxIter), "mode": w.Mode,
	}
}

// Julia-set constant (a classic highly-structured parameter).
const juliaCr, juliaCi = -0.8, 0.156

// juliaRow renders row y into dst and returns the total iteration count
// (the row's true compute weight). Identical code runs in verification.
func juliaRow(dst []byte, y, wpx, hpx, maxIter int) uint64 {
	var total uint64
	ci0 := -1.2 + 2.4*float64(y)/float64(hpx)
	for x := 0; x < wpx; x++ {
		zr := -1.6 + 3.2*float64(x)/float64(wpx)
		zi := ci0
		it := 0
		for ; it < maxIter; it++ {
			zr2, zi2 := zr*zr, zi*zi
			if zr2+zi2 > 4 {
				break
			}
			zr, zi = zr2-zi2+juliaCr, 2*zr*zi+juliaCi
		}
		dst[x] = byte(it)
		total += uint64(it)
	}
	return total
}

func (w *Julia) Prepare(m *cell.Machine) error {
	w.outEA = m.Alloc(w.W*w.H, 128)
	if w.Mode == "dynamic" {
		w.wq = cellsync.NewWorkQueue(m, 1, w.H)
	}
	m.RunMain(func(h cell.Host) {
		nspe := h.NumSPEs()
		var hs []*cell.SPEHandle
		for s := 0; s < nspe; s++ {
			spe := s
			hs = append(hs, h.Run(spe, "julia-"+w.Mode, func(spu cell.SPU) uint32 {
				w.speMain(spu, spe, nspe)
				return 0
			}))
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("julia: SPE exited with %d", code))
			}
		}
	})
	return nil
}

func (w *Julia) speMain(spu cell.SPU, spe, nspe int) {
	ls := spu.LS()
	render := func(y int) {
		iters := juliaRow(ls[:w.W], y, w.W, w.H, w.MaxIter)
		// ~10 flops per iteration plus per-pixel setup.
		spu.Compute(flopCycles(iters*10 + uint64(w.W)*4))
		spu.Put(0, w.outEA+uint64(y*w.W), w.W, 0)
		spu.WaitTagAll(1)
	}
	if w.Mode == "static" {
		start, end := partition(w.H, nspe, spe)
		for y := start; y < end; y++ {
			render(y)
		}
		return
	}
	for {
		item, ok := w.wq.Next(spu)
		if !ok {
			return
		}
		render(int(item))
	}
}

func (w *Julia) Verify(m *cell.Machine) error {
	row := make([]byte, w.W)
	step := w.H / 37
	if step == 0 {
		step = 1
	}
	for y := 0; y < w.H; y += step {
		juliaRow(row, y, w.W, w.H, w.MaxIter)
		got := m.Mem()[w.outEA+uint64(y*w.W) : w.outEA+uint64((y+1)*w.W)]
		for x := range row {
			if got[x] != row[x] {
				return fmt.Errorf("julia: pixel (%d,%d) = %d, want %d", x, y, got[x], row[x])
			}
		}
	}
	return nil
}
