package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/celltrace/pdt/internal/cell"
)

// Matmul is the blocked single-precision matrix multiply C = A*B. The
// matrices are stored tile-major in main memory so that one T*T tile is a
// single contiguous DMA transfer; with the default T=64 a tile is exactly
// the 16 KiB architectural DMA maximum. C tiles are partitioned round-
// robin across SPEs; the Buffers parameter selects single-buffered
// (fetch, wait, compute) or double-buffered (prefetch next k while
// computing) operand streaming — the paper's DMA-stall use case.
type Matmul struct {
	N       int // matrix dimension
	T       int // tile dimension
	Buffers int // 1 = single-buffered, 2 = double-buffered
	Seed    int

	aEA, bEA, cEA uint64
}

// NewMatmul returns a Matmul with the default 256x256 problem, 64x64
// tiles, double buffering.
func NewMatmul() *Matmul { return &Matmul{N: 256, T: 64, Buffers: 2, Seed: 1} }

func (w *Matmul) Name() string { return "matmul" }

func (w *Matmul) Description() string {
	return "blocked float32 matrix multiply, single- or double-buffered tile DMA"
}

func (w *Matmul) Configure(params map[string]string) error {
	if err := checkKnown(params, "n", "t", "buffers", "seed"); err != nil {
		return err
	}
	if err := intParam(params, "n", &w.N); err != nil {
		return err
	}
	if err := intParam(params, "t", &w.T); err != nil {
		return err
	}
	if err := intParam(params, "buffers", &w.Buffers); err != nil {
		return err
	}
	if err := intParam(params, "seed", &w.Seed); err != nil {
		return err
	}
	switch {
	case w.T <= 0 || w.T%4 != 0:
		return fmt.Errorf("matmul: tile size %d must be a positive multiple of 4", w.T)
	case w.N <= 0 || w.N%w.T != 0:
		return fmt.Errorf("matmul: N=%d must be a multiple of the tile size %d", w.N, w.T)
	case w.tileBytes() > cell.MaxDMASize:
		return fmt.Errorf("matmul: tile %d exceeds the %d-byte DMA limit", w.tileBytes(), cell.MaxDMASize)
	case w.Buffers != 1 && w.Buffers != 2:
		return fmt.Errorf("matmul: buffers must be 1 or 2, got %d", w.Buffers)
	}
	return nil
}

func (w *Matmul) Params() map[string]string {
	return map[string]string{
		"n": fmt.Sprint(w.N), "t": fmt.Sprint(w.T),
		"buffers": fmt.Sprint(w.Buffers), "seed": fmt.Sprint(w.Seed),
	}
}

func (w *Matmul) tileBytes() int { return w.T * w.T * 4 }
func (w *Matmul) nt() int        { return w.N / w.T }

// tileEA returns the effective address of tile (ti, tj) of the matrix at
// base (tile-major layout).
func (w *Matmul) tileEA(base uint64, ti, tj int) uint64 {
	return base + uint64((ti*w.nt()+tj)*w.tileBytes())
}

func (w *Matmul) Prepare(m *cell.Machine) error {
	bytes := w.N * w.N * 4
	w.aEA = m.Alloc(bytes, 128)
	w.bEA = m.Alloc(bytes, 128)
	w.cEA = m.Alloc(bytes, 128)
	fill := func(ea uint64, seed uint32) {
		fs := make([]float32, w.N*w.N)
		lcgFloats(fs, seed)
		for i, f := range fs {
			binary.LittleEndian.PutUint32(m.Mem()[ea+uint64(4*i):], math.Float32bits(f))
		}
	}
	fill(w.aEA, uint32(w.Seed))
	fill(w.bEA, uint32(w.Seed)+7)

	m.RunMain(func(h cell.Host) {
		nspe := h.NumSPEs()
		var hs []*cell.SPEHandle
		for s := 0; s < nspe; s++ {
			spe := s
			hs = append(hs, h.Run(spe, "matmul", func(spu cell.SPU) uint32 {
				w.speMain(spu, spe, nspe)
				return 0
			}))
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("matmul: SPE exited with %d", code))
			}
		}
	})
	return nil
}

// LS layout: |C acc|A0|B0|A1|B1| tiles from offset 0.
func (w *Matmul) speMain(spu cell.SPU, spe, nspe int) {
	tb := w.tileBytes()
	cOff := 0
	aOff := func(buf int) int { return tb + 2*buf*tb }
	bOff := func(buf int) int { return tb + 2*buf*tb + tb }
	nt := w.nt()
	nTiles := nt * nt
	const tagA, tagB, tagC = 0, 1, 2

	// Scratch float views to keep the Go-side math fast.
	af := make([]float32, w.T*w.T)
	bf := make([]float32, w.T*w.T)
	cf := make([]float32, w.T*w.T)
	ls := spu.LS()

	fetch := func(buf, ti, k, tj int) {
		spu.Get(aOff(buf), w.tileEA(w.aEA, ti, k), tb, tagA+2*buf)
		spu.Get(bOff(buf), w.tileEA(w.bEA, k, tj), tb, tagB+2*buf)
	}
	waitBuf := func(buf int) {
		spu.WaitTagAll(1<<uint(tagA+2*buf) | 1<<uint(tagB+2*buf))
	}

	for tile := spe; tile < nTiles; tile += nspe {
		ti, tj := tile/nt, tile%nt
		for i := range cf {
			cf[i] = 0
		}
		cur := 0
		fetch(cur, ti, 0, tj)
		for k := 0; k < nt; k++ {
			waitBuf(cur)
			if w.Buffers == 2 && k+1 < nt {
				fetch(1-cur, ti, k+1, tj)
			}
			// Load operand tiles from LS, multiply-accumulate, charging
			// the modeled flop cycles.
			decodeTile(ls[aOff(cur):], af)
			decodeTile(ls[bOff(cur):], bf)
			tileMulAdd(cf, af, bf, w.T)
			spu.Compute(flopCycles(2 * uint64(w.T) * uint64(w.T) * uint64(w.T)))
			if w.Buffers == 1 && k+1 < nt {
				fetch(cur, ti, k+1, tj)
			} else if w.Buffers == 2 {
				cur = 1 - cur
			}
		}
		encodeTile(cf, ls[cOff:])
		spu.Put(cOff, w.tileEA(w.cEA, ti, tj), tb, tagC+6)
		spu.WaitTagAll(1 << uint(tagC+6))
	}
}

func decodeTile(src []byte, dst []float32) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

func encodeTile(src []float32, dst []byte) {
	for i, f := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(f))
	}
}

// tileMulAdd computes c += a*b for T*T row-major tiles.
func tileMulAdd(c, a, b []float32, t int) {
	for i := 0; i < t; i++ {
		for k := 0; k < t; k++ {
			av := a[i*t+k]
			if av == 0 {
				continue
			}
			row := b[k*t:]
			crow := c[i*t:]
			for j := 0; j < t; j++ {
				crow[j] += av * row[j]
			}
		}
	}
}

func (w *Matmul) Verify(m *cell.Machine) error {
	n, t, nt := w.N, w.T, w.nt()
	read := func(base uint64, i, j int) float64 {
		ti, tj := i/t, j/t
		off := w.tileEA(base, ti, tj) + uint64(4*((i%t)*t+j%t))
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(m.Mem()[off:])))
	}
	// Check a deterministic sample of entries (full N^3 verification is
	// done by the small-N unit tests).
	step := n / 16
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		for j := 0; j < n; j += step {
			var want float64
			for tk := 0; tk < nt; tk++ {
				for k := tk * t; k < (tk+1)*t; k++ {
					want += read(w.aEA, i, k) * read(w.bEA, k, j)
				}
			}
			got := read(w.cEA, i, j)
			if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
				return fmt.Errorf("matmul: C[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	return nil
}
