package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/cellsync"
)

// NBody computes all-pairs gravitational accelerations with the classic
// Cell ring algorithm: each SPE holds a resident block of particles and a
// travelling block that circulates around the SPE ring by LS-to-LS DMA,
// so after nspe hops every block has met every other block without
// touching main memory in the inner loop. It is the all-to-all
// communication pattern complement to the stencil's nearest-neighbour
// exchange.
type NBody struct {
	N    int // particles, multiple of 4*nspe for DMA alignment
	Seed int

	posEA, accEA uint64
	bar          *cellsync.Barrier
	ref          []float32
}

// NewNBody returns the default 1024-particle configuration.
func NewNBody() *NBody { return &NBody{N: 1024, Seed: 41} }

func (w *NBody) Name() string { return "nbody" }

func (w *NBody) Description() string {
	return "all-pairs n-body via the SPE ring algorithm (blocks circulate LS-to-LS)"
}

func (w *NBody) Configure(params map[string]string) error {
	if err := checkKnown(params, "n", "seed"); err != nil {
		return err
	}
	if err := intParam(params, "n", &w.N); err != nil {
		return err
	}
	if err := intParam(params, "seed", &w.Seed); err != nil {
		return err
	}
	if w.N < 8 || w.N%8 != 0 {
		return fmt.Errorf("nbody: n=%d must be a multiple of 8 and at least 8", w.N)
	}
	return nil
}

func (w *NBody) Params() map[string]string {
	return map[string]string{"n": fmt.Sprint(w.N), "seed": fmt.Sprint(w.Seed)}
}

// Layout: positions as (x, y, m) triples of float32; accelerations as
// (ax, ay) pairs.
const (
	posStride = 12
	accStride = 8
	softening = 1e-2
)

// accumulate adds the acceleration on particle i (within pos) due to all
// particles in src; shared with the host reference.
func accumulate(ax, ay []float32, pos, src []float32, selfBlock bool) {
	nI := len(ax)
	nJ := len(src) / 3
	for i := 0; i < nI; i++ {
		xi, yi := pos[3*i], pos[3*i+1]
		var sx, sy float32
		for j := 0; j < nJ; j++ {
			if selfBlock && i == j {
				continue
			}
			dx := src[3*j] - xi
			dy := src[3*j+1] - yi
			d2 := dx*dx + dy*dy + softening
			inv := 1 / (d2 * float32(math.Sqrt(float64(d2))))
			f := src[3*j+2] * inv
			sx += f * dx
			sy += f * dy
		}
		ax[i] += sx
		ay[i] += sy
	}
}

func (w *NBody) blockParticles(nspe int) int {
	// Blocks must be equal-size for the ring; round N down per SPE and
	// let Configure sizes guarantee divisibility via padding.
	return w.N / nspe
}

func (w *NBody) Prepare(m *cell.Machine) error {
	nspe := m.NumSPEs()
	if w.N%(4*nspe) != 0 {
		return fmt.Errorf("nbody: n=%d must be a multiple of 4*SPEs=%d", w.N, 4*nspe)
	}
	w.posEA = m.Alloc(w.N*posStride, 128)
	w.accEA = m.Alloc(w.N*accStride, 128)
	pos := make([]float32, 3*w.N)
	lcgFloats(pos, uint32(w.Seed))
	for i := 0; i < w.N; i++ {
		pos[3*i+2] = 0.5 + pos[3*i+2]*pos[3*i+2] // positive masses
		for c := 0; c < 3; c++ {
			binary.LittleEndian.PutUint32(m.Mem()[w.posEA+uint64(posStride*i+4*c):],
				math.Float32bits(pos[3*i+c]))
		}
	}
	// Reference accelerations with the same float32 block order as the
	// ring schedule so results compare exactly.
	w.ref = w.reference(pos, nspe)

	w.bar = cellsync.NewBarrier(m, 3, nspe)
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for s := 0; s < nspe; s++ {
			spe := s
			hs = append(hs, h.Run(spe, "nbody", func(spu cell.SPU) uint32 {
				return w.speMain(spu, spe, nspe)
			}))
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("nbody: SPE exited with %d", code))
			}
		}
	})
	return nil
}

// reference mirrors the SPE ring schedule: each block accumulates against
// the blocks in ring order starting with itself.
func (w *NBody) reference(pos []float32, nspe int) []float32 {
	bp := w.blockParticles(nspe)
	acc := make([]float32, 2*w.N)
	for spe := 0; spe < nspe; spe++ {
		myBase := spe * bp
		my := pos[3*myBase : 3*(myBase+bp)]
		ax := make([]float32, bp)
		ay := make([]float32, bp)
		for hop := 0; hop < nspe; hop++ {
			// Blocks circulate forward, so each SPE sees its ring
			// predecessors' blocks in decreasing order.
			srcSpe := (spe - hop + nspe) % nspe
			src := pos[3*srcSpe*bp : 3*(srcSpe*bp+bp)]
			accumulate(ax, ay, my, src, hop == 0)
		}
		for i := 0; i < bp; i++ {
			acc[2*(myBase+i)] = ax[i]
			acc[2*(myBase+i)+1] = ay[i]
		}
	}
	return acc
}

// LS layout: resident block | travelling block | incoming slot | acc out.
func (w *NBody) speMain(spu cell.SPU, spe, nspe int) uint32 {
	bp := w.blockParticles(nspe)
	blockBytes := bp * posStride
	resOff := 0
	travOff := blockBytes
	inOff := 2 * blockBytes
	accOff := 3 * blockBytes
	if accOff+bp*accStride > 200*cell.KiB {
		return 1
	}
	ls := spu.LS()

	// Load the resident block; the travelling block starts as a copy.
	spu.Get(resOff, w.posEA+uint64(spe*blockBytes), blockBytes, 0)
	spu.WaitTagAll(1)
	copy(ls[travOff:travOff+blockBytes], ls[resOff:resOff+blockBytes])

	my := make([]float32, 3*bp)
	src := make([]float32, 3*bp)
	decodeTile(ls[resOff:resOff+blockBytes], my)
	ax := make([]float32, bp)
	ay := make([]float32, bp)

	next := (spe + 1) % nspe
	const sigArrived = 1 << 4
	for hop := 0; hop < nspe; hop++ {
		decodeTile(ls[travOff:travOff+blockBytes], src)
		accumulate(ax, ay, my, src, hop == 0)
		// ~20 flops per pair.
		spu.Compute(flopCycles(20 * uint64(bp) * uint64(bp)))
		if hop == nspe-1 {
			break
		}
		// Barrier: everyone's inbox slot is free (consumed last hop).
		w.bar.Wait(spu)
		// Pass the travelling block one hop around the ring; the
		// same-tag sndsig lands after the data (in-order MFC).
		spu.Put(travOff, cell.LSEA(next, uint64(inOff)), blockBytes, 5)
		spu.Sndsig(next, 2, sigArrived, 5)
		for spu.ReadSignal2()&sigArrived == 0 {
		}
		// Fence the outgoing pass before overwriting its source buffer.
		spu.WaitTagAll(1 << 5)
		copy(ls[travOff:travOff+blockBytes], ls[inOff:inOff+blockBytes])
		spu.Compute(uint64(blockBytes) / 16)
	}

	for i := 0; i < bp; i++ {
		binary.LittleEndian.PutUint32(ls[accOff+8*i:], math.Float32bits(ax[i]))
		binary.LittleEndian.PutUint32(ls[accOff+8*i+4:], math.Float32bits(ay[i]))
	}
	spu.Put(accOff, w.accEA+uint64(spe*bp*accStride), bp*accStride, 0)
	spu.WaitTagAll(1)
	return 0
}

func (w *NBody) Verify(m *cell.Machine) error {
	for i := 0; i < w.N; i++ {
		gx := math.Float32frombits(binary.LittleEndian.Uint32(m.Mem()[w.accEA+uint64(accStride*i):]))
		gy := math.Float32frombits(binary.LittleEndian.Uint32(m.Mem()[w.accEA+uint64(accStride*i+4):]))
		wx, wy := w.ref[2*i], w.ref[2*i+1]
		if gx != wx || gy != wy {
			return fmt.Errorf("nbody: particle %d acc = (%g,%g), want (%g,%g)", i, gx, gy, wx, wy)
		}
	}
	return nil
}
