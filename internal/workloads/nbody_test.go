package workloads

import (
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
)

func TestNBodySmall(t *testing.T) {
	runWorkload(t, "nbody", map[string]string{"n": "64"}, false)
}

func TestNBodyDefault(t *testing.T) {
	runWorkload(t, "nbody", nil, false)
}

func TestNBodyTracedRingTraffic(t *testing.T) {
	_, tr := runWorkload(t, "nbody", map[string]string{"n": "128"}, true)
	counts := map[event.ID]int{}
	var putBytes uint64
	for _, e := range tr.Events() {
		counts[e.ID]++
		if e.ID == event.SPEMFCPut {
			putBytes += e.Args[2]
		}
	}
	// 8 SPEs x 7 ring passes, one sndsig each.
	if counts[event.SPESndsig] != 8*7 {
		t.Fatalf("sndsig = %d, want 56", counts[event.SPESndsig])
	}
	// Ring PUTs: 56 block passes of 16 particles x 12 bytes, plus 8
	// final acc PUTs of 16x8 bytes.
	wantRing := uint64(56 * 16 * 12)
	wantAcc := uint64(8 * 16 * 8)
	if putBytes != wantRing+wantAcc {
		t.Fatalf("put bytes = %d, want %d", putBytes, wantRing+wantAcc)
	}
	if errs := analyzer.Errors(analyzer.Validate(tr)); len(errs) != 0 {
		t.Fatalf("validation: %v", errs)
	}
	// The ring is all-to-all LS traffic: no main-memory reads beyond the
	// initial block loads.
	s := analyzer.Summarize(tr)
	var gets int
	for _, d := range s.DMA {
		gets += d.Gets
	}
	if gets != 8 {
		t.Fatalf("GETs = %d, want 8 (one resident block each)", gets)
	}
}

func TestNBodyConfigValidation(t *testing.T) {
	w := NewNBody()
	for _, bad := range []map[string]string{
		{"n": "7"},  // not multiple of 8
		{"n": "0"},  // zero
		{"n": "xx"}, // parse error
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
	// Divisibility vs SPE count is checked at Prepare.
	if err := w.Configure(map[string]string{"n": "40"}); err != nil {
		t.Fatal(err)
	}
	mc := cell.DefaultConfig()
	mc.MemSize = 16 * cell.MiB
	m := cell.NewMachine(mc)
	if err := w.Prepare(m); err == nil {
		t.Fatal("n=40 with 8 SPEs accepted")
	}
}

func TestAccumulateSymmetry(t *testing.T) {
	// Two equal masses attract each other with opposite accelerations.
	pos := []float32{0, 0, 1, 1, 0, 1}
	ax := make([]float32, 2)
	ay := make([]float32, 2)
	accumulate(ax, ay, pos, pos, true)
	if ax[0] <= 0 || ax[1] >= 0 {
		t.Fatalf("accelerations not opposed: ax = %v", ax)
	}
	if ax[0] != -ax[1] {
		t.Fatalf("not symmetric: %v", ax)
	}
	if ay[0] != 0 || ay[1] != 0 {
		t.Fatalf("spurious y acceleration: %v", ay)
	}
}
