package workloads

import (
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
)

// Pipeline streams blocks through a chain of SPE stages connected by
// LS-to-LS DMA with two-slot inboxes and atomic full/empty flags in main
// storage; the last stage reports each completed block to the PPE through
// its outbound mailbox. Each stage adds (stage+1) to every byte. With
// SlowStage >= 0, that stage's compute is multiplied by SlowFactor, which
// concentrates upstream back-pressure and downstream starvation around it
// — the paper's communication-bottleneck use case.
type Pipeline struct {
	Stages     int // number of SPE stages (0 = all SPEs)
	Blocks     int
	BlockBytes int
	SlowStage  int // -1 = balanced pipeline
	SlowFactor int
	Seed       int

	inEA, outEA uint64
	flagsEA     [][2]uint64 // [stage][slot] full/empty flags (stages 1..S-1)
}

// NewPipeline returns the default 64-block, 4 KiB-block pipeline over all
// SPEs with no slow stage.
func NewPipeline() *Pipeline {
	return &Pipeline{Stages: 0, Blocks: 64, BlockBytes: 4096, SlowStage: -1, SlowFactor: 8, Seed: 5}
}

func (w *Pipeline) Name() string { return "pipeline" }

func (w *Pipeline) Description() string {
	return "SPE-to-SPE stream pipeline with two-slot inboxes; optional slow stage bottleneck"
}

func (w *Pipeline) Configure(params map[string]string) error {
	if err := checkKnown(params, "stages", "blocks", "blockbytes", "slowstage", "slowfactor", "seed"); err != nil {
		return err
	}
	for key, dst := range map[string]*int{
		"stages": &w.Stages, "blocks": &w.Blocks, "blockbytes": &w.BlockBytes,
		"slowstage": &w.SlowStage, "slowfactor": &w.SlowFactor, "seed": &w.Seed,
	} {
		if err := intParam(params, key, dst); err != nil {
			return err
		}
	}
	if w.BlockBytes <= 0 || w.BlockBytes%16 != 0 || w.BlockBytes > cell.MaxDMASize {
		return fmt.Errorf("pipeline: blockbytes=%d must be a multiple of 16 within the DMA limit", w.BlockBytes)
	}
	if w.Blocks <= 0 {
		return fmt.Errorf("pipeline: blocks must be positive")
	}
	if w.SlowFactor < 1 {
		return fmt.Errorf("pipeline: slowfactor must be >= 1")
	}
	return nil
}

func (w *Pipeline) Params() map[string]string {
	return map[string]string{
		"stages": fmt.Sprint(w.Stages), "blocks": fmt.Sprint(w.Blocks),
		"blockbytes": fmt.Sprint(w.BlockBytes), "slowstage": fmt.Sprint(w.SlowStage),
		"slowfactor": fmt.Sprint(w.SlowFactor), "seed": fmt.Sprint(w.Seed),
	}
}

const pipeSpin = 300 // cycles between flag polls

func (w *Pipeline) Prepare(m *cell.Machine) error {
	stages := w.Stages
	if stages <= 0 || stages > m.NumSPEs() {
		stages = m.NumSPEs()
	}
	w.Stages = stages
	total := w.Blocks * w.BlockBytes
	w.inEA = m.Alloc(total, 128)
	w.outEA = m.Alloc(total, 128)
	lcg(m.Mem()[w.inEA:w.inEA+uint64(total)], uint32(w.Seed))

	w.flagsEA = make([][2]uint64, stages)
	for i := 1; i < stages; i++ {
		for s := 0; s < 2; s++ {
			ea := m.Alloc(8, 8)
			m.WriteWord64(ea, 0)
			w.flagsEA[i][s] = ea
		}
	}

	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < stages; i++ {
			stage := i
			hs = append(hs, h.Run(stage, "pipeline", func(spu cell.SPU) uint32 {
				w.stageMain(spu, stage, stages)
				return 0
			}))
		}
		// Collect one mailbox token per block from the last stage.
		for k := 0; k < w.Blocks; k++ {
			if v := h.ReadOutMbox(stages - 1); int(v) != k {
				panic(fmt.Sprintf("pipeline: completion token %d, want %d", v, k))
			}
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("pipeline: stage exited with %d", code))
			}
		}
	})
	return nil
}

// LS layout: slot0 | slot1 | outbuf.
func (w *Pipeline) stageMain(spu cell.SPU, stage, stages int) {
	bb := w.BlockBytes
	outOff := 2 * bb
	ls := spu.LS()
	cost := uint64(bb) // ~1 cycle per byte
	if stage == w.SlowStage {
		cost *= uint64(w.SlowFactor)
	}
	const tagIn, tagOut = 0, 1

	for k := 0; k < w.Blocks; k++ {
		slot := k % 2
		inOff := slot * bb
		if stage == 0 {
			// Head: pull from main memory into the slot.
			spu.Get(inOff, w.inEA+uint64(k*bb), bb, tagIn)
			spu.WaitTagAll(1 << tagIn)
		} else {
			// Wait for the producer to fill our slot.
			for spu.AtomicAdd(w.flagsEA[stage][slot], 0) == 0 {
				spu.Compute(pipeSpin)
			}
		}
		// Transform slot -> outbuf.
		for j := 0; j < bb; j++ {
			ls[outOff+j] = ls[inOff+j] + byte(stage+1)
		}
		spu.Compute(cost)
		if stage > 0 {
			// Slot consumed; let the producer refill it.
			if !spu.AtomicCAS(w.flagsEA[stage][slot], 1, 0) {
				panic("pipeline: inbox flag corrupted")
			}
		}
		if stage < stages-1 {
			// Push to the next stage's matching slot once it is free.
			for spu.AtomicAdd(w.flagsEA[stage+1][slot], 0) != 0 {
				spu.Compute(pipeSpin)
			}
			spu.Put(outOff, cell.LSEA(stage+1, uint64(inOff)), bb, tagOut)
			spu.WaitTagAll(1 << tagOut)
			if !spu.AtomicCAS(w.flagsEA[stage+1][slot], 0, 1) {
				panic("pipeline: downstream flag corrupted")
			}
		} else {
			// Tail: write result and report completion to the PPE.
			spu.Put(outOff, w.outEA+uint64(k*bb), bb, tagOut)
			spu.WaitTagAll(1 << tagOut)
			spu.WriteOutMbox(uint32(k))
		}
	}
}

func (w *Pipeline) Verify(m *cell.Machine) error {
	total := w.Blocks * w.BlockBytes
	delta := byte(w.Stages * (w.Stages + 1) / 2)
	in := m.Mem()[w.inEA : w.inEA+uint64(total)]
	out := m.Mem()[w.outEA : w.outEA+uint64(total)]
	for i := 0; i < total; i++ {
		if out[i] != in[i]+delta {
			return fmt.Errorf("pipeline: out[%d] = %d, want %d", i, out[i], in[i]+delta)
		}
	}
	return nil
}
