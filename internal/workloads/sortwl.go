package workloads

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/celltrace/pdt/internal/cell"
)

// Sort is a two-phase distributed sort in the CellSort mold: SPEs stream
// local-store-sized chunks in, sort them in place, and stream them back;
// the PPE then k-way merges the sorted runs into the output array. The
// first phase is embarrassingly parallel and DMA-bound at the edges; the
// merge is serial on the PPE — the workload whose critical path analysis
// shows the host becoming the bottleneck as SPEs are added.
type Sort struct {
	Elements int // uint32 elements
	Chunk    int // elements per SPE-sorted run
	Seed     int

	inEA, outEA uint64
}

// NewSort returns the default 256Ki-element sort with 4K-element runs.
func NewSort() *Sort { return &Sort{Elements: 1 << 18, Chunk: 4096, Seed: 31} }

func (w *Sort) Name() string { return "sort" }

func (w *Sort) Description() string {
	return "distributed sort: SPE-local chunk sorts + PPE k-way merge"
}

func (w *Sort) Configure(params map[string]string) error {
	if err := checkKnown(params, "elements", "chunk", "seed"); err != nil {
		return err
	}
	for key, dst := range map[string]*int{"elements": &w.Elements, "chunk": &w.Chunk, "seed": &w.Seed} {
		if err := intParam(params, key, dst); err != nil {
			return err
		}
	}
	if w.Chunk <= 0 || w.Chunk%4 != 0 || w.Chunk*4 > cell.MaxDMASize {
		return fmt.Errorf("sort: chunk=%d must be a positive multiple of 4 fitting one DMA", w.Chunk)
	}
	if w.Elements <= 0 || w.Elements%w.Chunk != 0 {
		return fmt.Errorf("sort: elements=%d must be a multiple of chunk=%d", w.Elements, w.Chunk)
	}
	return nil
}

func (w *Sort) Params() map[string]string {
	return map[string]string{
		"elements": fmt.Sprint(w.Elements), "chunk": fmt.Sprint(w.Chunk), "seed": fmt.Sprint(w.Seed),
	}
}

func (w *Sort) Prepare(m *cell.Machine) error {
	w.inEA = m.Alloc(w.Elements*4, 128)
	w.outEA = m.Alloc(w.Elements*4, 128)
	x := uint32(w.Seed) | 1
	for i := 0; i < w.Elements; i++ {
		x = x*1664525 + 1013904223
		binary.LittleEndian.PutUint32(m.Mem()[w.inEA+uint64(4*i):], x)
	}

	m.RunMain(func(h cell.Host) {
		nspe := h.NumSPEs()
		var hs []*cell.SPEHandle
		for s := 0; s < nspe; s++ {
			spe := s
			hs = append(hs, h.Run(spe, "sort", func(spu cell.SPU) uint32 {
				w.speMain(spu, spe, nspe)
				return 0
			}))
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("sort: SPE exited with %d", code))
			}
		}
		w.ppeMerge(h)
	})
	return nil
}

// speMain sorts this SPE's chunks in place (in main memory).
func (w *Sort) speMain(spu cell.SPU, spe, nspe int) {
	cb := w.Chunk * 4
	nChunks := w.Elements / w.Chunk
	ls := spu.LS()
	vals := make([]uint32, w.Chunk)
	for c := spe; c < nChunks; c += nspe {
		ea := w.inEA + uint64(c*cb)
		spu.Get(0, ea, cb, 0)
		spu.WaitTagAll(1)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint32(ls[4*i:])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		// ~2*n*log2(n) comparison/exchange cycles.
		logN := 0
		for 1<<logN < w.Chunk {
			logN++
		}
		spu.Compute(2 * uint64(w.Chunk) * uint64(logN))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(ls[4*i:], v)
		}
		spu.Put(0, ea, cb, 1)
		spu.WaitTagAll(1 << 1)
	}
}

// ppeMerge k-way merges the sorted runs into the output array.
func (w *Sort) ppeMerge(h cell.Host) {
	mem := h.Mem()
	nChunks := w.Elements / w.Chunk
	heads := make([]int, nChunks) // element index consumed per run
	read := func(run int) uint32 {
		idx := run*w.Chunk + heads[run]
		return binary.LittleEndian.Uint32(mem[w.inEA+uint64(4*idx):])
	}
	for out := 0; out < w.Elements; out++ {
		best := -1
		var bestV uint32
		for r := 0; r < nChunks; r++ {
			if heads[r] >= w.Chunk {
				continue
			}
			if v := read(r); best < 0 || v < bestV {
				best, bestV = r, v
			}
		}
		heads[best]++
		binary.LittleEndian.PutUint32(mem[w.outEA+uint64(4*out):], bestV)
	}
	// ~k comparisons per output element on the PPE.
	h.Compute(uint64(w.Elements) * uint64(nChunks) / 4)
}

func (w *Sort) Verify(m *cell.Machine) error {
	var prev uint32
	counts := map[uint32]int{}
	for i := 0; i < w.Elements; i++ {
		v := binary.LittleEndian.Uint32(m.Mem()[w.outEA+uint64(4*i):])
		if i > 0 && v < prev {
			return fmt.Errorf("sort: out[%d]=%d < out[%d]=%d", i, v, i-1, prev)
		}
		prev = v
		counts[v]++
	}
	// Permutation check against a regenerated input stream.
	x := uint32(w.Seed) | 1
	for i := 0; i < w.Elements; i++ {
		x = x*1664525 + 1013904223
		counts[x]--
	}
	for v, c := range counts {
		if c != 0 {
			return fmt.Errorf("sort: value %d count off by %d (not a permutation)", v, c)
		}
	}
	return nil
}
