package workloads

import (
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core/event"
)

func TestSortSmall(t *testing.T) {
	runWorkload(t, "sort", map[string]string{"elements": "8192", "chunk": "1024"}, false)
}

func TestSortSingleChunk(t *testing.T) {
	runWorkload(t, "sort", map[string]string{"elements": "512", "chunk": "512"}, false)
}

func TestSortTraced(t *testing.T) {
	_, tr := runWorkload(t, "sort", map[string]string{"elements": "16384", "chunk": "2048"}, true)
	counts := map[event.ID]int{}
	for _, e := range tr.Events() {
		counts[e.ID]++
	}
	// 8 chunks: one GET and one PUT each.
	if counts[event.SPEMFCGet] != 8 || counts[event.SPEMFCPut] != 8 {
		t.Fatalf("gets/puts = %d/%d", counts[event.SPEMFCGet], counts[event.SPEMFCPut])
	}
	if errs := analyzer.Errors(analyzer.Validate(tr)); len(errs) != 0 {
		t.Fatalf("validation: %v", errs)
	}
}

func TestSortPPEMergeOnCriticalPath(t *testing.T) {
	// The serial PPE merge must appear in the critical-path attribution.
	_, tr := runWorkload(t, "sort", map[string]string{"elements": "16384", "chunk": "2048"}, true)
	cp := analyzer.ComputeCriticalPath(tr)
	if cp.CoreTicks[event.CorePPE] == 0 {
		t.Fatal("PPE merge missing from critical path")
	}
}

func TestSortConfigValidation(t *testing.T) {
	w := NewSort()
	for _, bad := range []map[string]string{
		{"chunk": "6"},                       // not multiple of 4
		{"chunk": "8192"},                    // over DMA limit
		{"elements": "1000", "chunk": "512"}, // not a multiple
		{"elements": "0"},
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}
