package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/cellsync"
)

// Stencil is a Jacobi 5-point stencil over a W x H float32 grid with
// row-block decomposition: each SPE keeps its block resident in local
// store and exchanges halo rows with its neighbours every iteration by
// LS-to-LS DMA, notifying them with a same-tag mfc_sndsig that the
// in-order MFC turns into a fenced signal (data is guaranteed to precede
// the notification). Iterations are separated by an atomic barrier. This
// is the canonical Cell nearest-neighbour pattern and the workload that
// exercises SPE-to-SPE communication end to end.
type Stencil struct {
	W, H  int
	Iters int
	Seed  int

	gridEA uint64
	bar    *cellsync.Barrier
	ref    []float32
}

// NewStencil returns the default 256x128 grid, 8 iterations.
func NewStencil() *Stencil { return &Stencil{W: 256, H: 128, Iters: 8, Seed: 21} }

func (w *Stencil) Name() string { return "stencil" }

func (w *Stencil) Description() string {
	return "Jacobi 5-point stencil; LS-resident blocks, halo exchange via SPE-to-SPE DMA + fenced sndsig"
}

func (w *Stencil) Configure(params map[string]string) error {
	if err := checkKnown(params, "w", "h", "iters", "seed"); err != nil {
		return err
	}
	for key, dst := range map[string]*int{"w": &w.W, "h": &w.H, "iters": &w.Iters, "seed": &w.Seed} {
		if err := intParam(params, key, dst); err != nil {
			return err
		}
	}
	if w.W < 16 || w.W%4 != 0 || w.W*4 > cell.MaxDMASize {
		return fmt.Errorf("stencil: width %d must be >=16, a multiple of 4, and one row must fit a DMA", w.W)
	}
	if w.H < 4 {
		return fmt.Errorf("stencil: height %d too small", w.H)
	}
	if w.Iters <= 0 {
		return fmt.Errorf("stencil: iters must be positive")
	}
	return nil
}

func (w *Stencil) Params() map[string]string {
	return map[string]string{
		"w": fmt.Sprint(w.W), "h": fmt.Sprint(w.H),
		"iters": fmt.Sprint(w.Iters), "seed": fmt.Sprint(w.Seed),
	}
}

func (w *Stencil) rowBytes() int { return w.W * 4 }

// stencilRow computes one output row from the three input rows (fixed
// zero boundary on the left/right edges). Shared with verification.
func stencilRow(out, up, mid, down []float32) {
	n := len(out)
	out[0] = 0
	out[n-1] = 0
	for x := 1; x < n-1; x++ {
		out[x] = 0.2 * (mid[x] + mid[x-1] + mid[x+1] + up[x] + down[x])
	}
}

func (w *Stencil) Prepare(m *cell.Machine) error {
	w.gridEA = m.Alloc(w.W*w.H*4, 128)
	init := make([]float32, w.W*w.H)
	lcgFloats(init, uint32(w.Seed))
	for i, f := range init {
		binary.LittleEndian.PutUint32(m.Mem()[w.gridEA+uint64(4*i):], math.Float32bits(f))
	}
	// Reference: identical float32 arithmetic on the host.
	w.ref = w.reference(init)

	nspe := m.NumSPEs()
	w.bar = cellsync.NewBarrier(m, 2, nspe)
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for s := 0; s < nspe; s++ {
			spe := s
			hs = append(hs, h.Run(spe, "stencil", func(spu cell.SPU) uint32 {
				return w.speMain(spu, spe, nspe)
			}))
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("stencil: SPE exited with %d", code))
			}
		}
	})
	return nil
}

// reference runs the same iteration count on the host (plain float32).
func (w *Stencil) reference(grid []float32) []float32 {
	cur := append([]float32(nil), grid...)
	next := make([]float32, len(grid))
	zero := make([]float32, w.W)
	for it := 0; it < w.Iters; it++ {
		for y := 0; y < w.H; y++ {
			up, down := zero, zero
			if y > 0 {
				up = cur[(y-1)*w.W : y*w.W]
			}
			if y < w.H-1 {
				down = cur[(y+1)*w.W : (y+2)*w.W]
			}
			stencilRow(next[y*w.W:(y+1)*w.W], up, cur[y*w.W:(y+1)*w.W], down)
		}
		cur, next = next, cur
	}
	return cur
}

// Local-store layout (offsets in rows of rowBytes):
//
//	row 0:            halo from the upper neighbour
//	rows 1..n:        the block (n rows)
//	row n+1:          halo from the lower neighbour
//	rows n+2..2n+1:   the "next" block (Jacobi writes here, then swap)
func (w *Stencil) speMain(spu cell.SPU, spe, nspe int) uint32 {
	rb := w.rowBytes()
	r0, r1 := partition(w.H, nspe, spe)
	n := r1 - r0
	if n == 0 {
		// No rows: still participate in barriers so neighbours advance.
		for it := 0; it < w.Iters; it++ {
			w.bar.Wait(spu)
		}
		return 0
	}
	haloUpOff := 0
	blockOff := rb
	haloDownOff := (n + 1) * rb
	nextOff := (n + 2) * rb
	if nextOff+n*rb > 200*cell.KiB {
		return 1 // block does not fit the local-store budget
	}
	ls := spu.LS()

	// Load the block.
	for r := 0; r < n; r++ {
		spu.Get(blockOff+r*rb, w.gridEA+uint64((r0+r)*rb), rb, 0)
	}
	spu.WaitTagAll(1)

	zero := make([]float32, w.W)
	up := make([]float32, w.W)
	mid := make([]float32, w.W)
	down := make([]float32, w.W)
	out := make([]float32, w.W)

	const sigUpper, sigLower = 1 << 0, 1 << 1 // arrival bits in signal reg 1
	for it := 0; it < w.Iters; it++ {
		// All SPEs finished computing the previous iteration; halo
		// slots are reusable.
		w.bar.Wait(spu)
		want := uint32(0)
		// Send boundary rows to the neighbours' halo slots; the sndsig
		// on the same tag group acts as a fenced notification.
		if spe > 0 && r0 > 0 {
			spu.Put(blockOff, cell.LSEA(spe-1, uint64((partitionN(w.H, nspe, spe-1)+1)*rb)), rb, 2)
			spu.Sndsig(spe-1, 1, sigLower, 2)
		}
		if spe < nspe-1 && r1 < w.H {
			spu.Put(blockOff+(n-1)*rb, cell.LSEA(spe+1, 0), rb, 3)
			spu.Sndsig(spe+1, 1, sigUpper, 3)
		}
		if spe > 0 && r0 > 0 {
			want |= sigUpper
		}
		if spe < nspe-1 && r1 < w.H {
			want |= sigLower
		}
		// Collect neighbour arrivals (OR-mode register accumulates).
		var got uint32
		for got&want != want {
			got |= spu.ReadSignal1()
		}
		// Compute the next block.
		for r := 0; r < n; r++ {
			switch {
			case r0+r == 0:
				copy(up, zero)
			case r == 0:
				decodeTile(ls[haloUpOff:haloUpOff+rb], up)
			default:
				decodeTile(ls[blockOff+(r-1)*rb:blockOff+r*rb], up)
			}
			decodeTile(ls[blockOff+r*rb:blockOff+(r+1)*rb], mid)
			switch {
			case r0+r == w.H-1:
				copy(down, zero)
			case r == n-1:
				decodeTile(ls[haloDownOff:haloDownOff+rb], down)
			default:
				decodeTile(ls[blockOff+(r+1)*rb:blockOff+(r+2)*rb], down)
			}
			stencilRow(out, up, mid, down)
			encodeTile(out, ls[nextOff+r*rb:nextOff+(r+1)*rb])
		}
		spu.Compute(flopCycles(5 * uint64(n) * uint64(w.W)))
		// Fence the outgoing halo transfers before mutating the block
		// they read from (they are usually long complete, but a small
		// block computes faster than a row DMA drains).
		spu.WaitTagAll(1<<2 | 1<<3)
		// Swap blocks (copy back: the halo slots sit around the primary
		// block, so the primary location is fixed).
		copy(ls[blockOff:blockOff+n*rb], ls[nextOff:nextOff+n*rb])
		spu.Compute(uint64(n*rb) / 16) // LS-to-LS copy cost
	}

	// Write the block back.
	for r := 0; r < n; r++ {
		spu.Put(blockOff+r*rb, w.gridEA+uint64((r0+r)*rb), rb, 0)
	}
	spu.WaitTagAll(1)
	return 0
}

// partitionN returns the row count of worker idx (helper for halo slot
// addressing on the neighbour).
func partitionN(total, workers, idx int) int {
	s, e := partition(total, workers, idx)
	return e - s
}

func (w *Stencil) Verify(m *cell.Machine) error {
	for i := 0; i < w.W*w.H; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(m.Mem()[w.gridEA+uint64(4*i):]))
		if got != w.ref[i] {
			return fmt.Errorf("stencil: cell %d = %g, want %g", i, got, w.ref[i])
		}
	}
	return nil
}
