package workloads

import (
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core/event"
)

func TestStencilSmall(t *testing.T) {
	runWorkload(t, "stencil", map[string]string{"w": "64", "h": "32", "iters": "4"}, false)
}

func TestStencilDefaultSize(t *testing.T) {
	runWorkload(t, "stencil", nil, false)
}

func TestStencilSingleIteration(t *testing.T) {
	runWorkload(t, "stencil", map[string]string{"w": "64", "h": "16", "iters": "1"}, false)
}

func TestStencilFewerRowsThanSPEs(t *testing.T) {
	// 4 rows over 8 SPEs: half the SPEs idle through barriers only.
	runWorkload(t, "stencil", map[string]string{"w": "64", "h": "4", "iters": "3"}, false)
}

func TestStencilTracedHaloTraffic(t *testing.T) {
	_, tr := runWorkload(t, "stencil", map[string]string{"w": "64", "h": "64", "iters": "4"}, true)
	counts := map[event.ID]int{}
	for _, e := range tr.Events() {
		counts[e.ID]++
	}
	// 8 SPEs, interior pairs exchange 2 halo rows per iteration: SPE 0
	// and 7 send one each, SPEs 1..6 send two each -> 14 sends/iter.
	if counts[event.SPESndsig] != 14*4 {
		t.Fatalf("sndsig events = %d, want %d", counts[event.SPESndsig], 14*4)
	}
	if counts[event.SyncBarrierEnter] != 8*4 {
		t.Fatalf("barrier enters = %d, want 32", counts[event.SyncBarrierEnter])
	}
	if counts[event.SPEReadSignalEnter] == 0 {
		t.Fatal("no signal reads recorded")
	}
	s := analyzer.Summarize(tr)
	if s.TotalState(analyzer.StateStallSignal) == 0 {
		t.Fatal("no signal-wait time attributed")
	}
	if errs := analyzer.Errors(analyzer.Validate(tr)); len(errs) != 0 {
		t.Fatalf("validation: %v", errs)
	}
}

func TestStencilTracingPreservesResult(t *testing.T) {
	runWorkload(t, "stencil", map[string]string{"w": "64", "h": "32", "iters": "3"}, true)
}

func TestStencilConfigValidation(t *testing.T) {
	w := NewStencil()
	for _, bad := range []map[string]string{
		{"w": "10"},    // not multiple of 4 / too small
		{"w": "8192"},  // row exceeds DMA
		{"h": "2"},     // too small
		{"iters": "0"}, // zero
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestStencilRowKernel(t *testing.T) {
	up := []float32{0, 1, 2, 3}
	mid := []float32{4, 5, 6, 7}
	down := []float32{8, 9, 10, 11}
	out := make([]float32, 4)
	stencilRow(out, up, mid, down)
	if out[0] != 0 || out[3] != 0 {
		t.Fatal("boundary not zeroed")
	}
	want := float32(0.2 * (5 + 4 + 6 + 1 + 9))
	if out[1] != want {
		t.Fatalf("out[1] = %g, want %g", out[1], want)
	}
}
