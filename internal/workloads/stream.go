package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/celltrace/pdt/internal/cell"
)

// Stream is the STREAM-triad bandwidth workload: a[i] = b[i] + q*c[i]
// over float32 arrays, each SPE streaming its partition through local
// store in 16 KiB chunks (single- or double-buffered). It is almost pure
// memory traffic (half a cycle of compute per 12 bytes moved), so it
// saturates the modeled memory interface and is the probe workload for
// the machine-bandwidth ablation experiment.
type Stream struct {
	Elements int // float32 elements per array
	Buffers  int // 1 or 2
	Seed     int

	aEA, bEA, cEA uint64
}

// streamQ is the triad scale factor.
const streamQ float32 = 3.0

// streamChunk is the per-DMA element count (16 KiB of float32).
const streamChunk = 4096

// NewStream returns the default 1M-element double-buffered triad.
func NewStream() *Stream { return &Stream{Elements: 1 << 20, Buffers: 2, Seed: 13} }

func (w *Stream) Name() string { return "stream" }

func (w *Stream) Description() string {
	return "STREAM triad a=b+q*c over float32 arrays; memory-bandwidth bound"
}

func (w *Stream) Configure(params map[string]string) error {
	if err := checkKnown(params, "elements", "buffers", "seed"); err != nil {
		return err
	}
	if err := intParam(params, "elements", &w.Elements); err != nil {
		return err
	}
	if err := intParam(params, "buffers", &w.Buffers); err != nil {
		return err
	}
	if err := intParam(params, "seed", &w.Seed); err != nil {
		return err
	}
	if w.Elements <= 0 || w.Elements%streamChunk != 0 {
		return fmt.Errorf("stream: elements=%d must be a positive multiple of %d", w.Elements, streamChunk)
	}
	if w.Buffers != 1 && w.Buffers != 2 {
		return fmt.Errorf("stream: buffers must be 1 or 2")
	}
	return nil
}

func (w *Stream) Params() map[string]string {
	return map[string]string{
		"elements": fmt.Sprint(w.Elements), "buffers": fmt.Sprint(w.Buffers), "seed": fmt.Sprint(w.Seed),
	}
}

// BytesMoved returns the total memory traffic of one run (read b and c,
// write a).
func (w *Stream) BytesMoved() uint64 { return uint64(w.Elements) * 12 }

func (w *Stream) Prepare(m *cell.Machine) error {
	bytes := w.Elements * 4
	w.aEA = m.Alloc(bytes, 128)
	w.bEA = m.Alloc(bytes, 128)
	w.cEA = m.Alloc(bytes, 128)
	vals := make([]float32, w.Elements)
	lcgFloats(vals, uint32(w.Seed))
	for i, f := range vals {
		binary.LittleEndian.PutUint32(m.Mem()[w.bEA+uint64(4*i):], math.Float32bits(f))
	}
	lcgFloats(vals, uint32(w.Seed)+1)
	for i, f := range vals {
		binary.LittleEndian.PutUint32(m.Mem()[w.cEA+uint64(4*i):], math.Float32bits(f))
	}

	m.RunMain(func(h cell.Host) {
		nspe := h.NumSPEs()
		var hs []*cell.SPEHandle
		for s := 0; s < nspe; s++ {
			spe := s
			hs = append(hs, h.Run(spe, "stream", func(spu cell.SPU) uint32 {
				w.speMain(spu, spe, nspe)
				return 0
			}))
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("stream: SPE exited with %d", code))
			}
		}
	})
	return nil
}

// LS layout per buffer set: |b|c|a| chunks; double buffering doubles it.
func (w *Stream) speMain(spu cell.SPU, spe, nspe int) {
	const cb = streamChunk * 4 // chunk bytes
	nChunks := w.Elements / streamChunk
	c0, c1 := partition(nChunks, nspe, spe)
	ls := spu.LS()

	bOff := func(buf int) int { return buf * 3 * cb }
	cOff := func(buf int) int { return buf*3*cb + cb }
	aOff := func(buf int) int { return buf*3*cb + 2*cb }
	fetch := func(buf, chunk int) {
		ea := uint64(chunk * cb)
		spu.Get(bOff(buf), w.bEA+ea, cb, buf)
		spu.Get(cOff(buf), w.cEA+ea, cb, buf)
	}

	if c0 >= c1 {
		return
	}
	cur := 0
	fetch(cur, c0)
	for chunk := c0; chunk < c1; chunk++ {
		spu.WaitTagAll(1 << uint(cur))
		if w.Buffers == 2 && chunk+1 < c1 {
			fetch(1-cur, chunk+1)
		}
		for i := 0; i < streamChunk; i++ {
			b := math.Float32frombits(binary.LittleEndian.Uint32(ls[bOff(cur)+4*i:]))
			c := math.Float32frombits(binary.LittleEndian.Uint32(ls[cOff(cur)+4*i:]))
			binary.LittleEndian.PutUint32(ls[aOff(cur)+4*i:], math.Float32bits(b+streamQ*c))
		}
		spu.Compute(flopCycles(2 * streamChunk))
		spu.Put(aOff(cur), w.aEA+uint64(chunk*cb), cb, 2+cur)
		spu.WaitTagAll(1 << uint(2+cur))
		if w.Buffers == 1 && chunk+1 < c1 {
			fetch(cur, chunk+1)
		} else if w.Buffers == 2 {
			cur = 1 - cur
		}
	}
}

func (w *Stream) Verify(m *cell.Machine) error {
	step := w.Elements / 4096
	if step == 0 {
		step = 1
	}
	for i := 0; i < w.Elements; i += step {
		b := math.Float32frombits(binary.LittleEndian.Uint32(m.Mem()[w.bEA+uint64(4*i):]))
		c := math.Float32frombits(binary.LittleEndian.Uint32(m.Mem()[w.cEA+uint64(4*i):]))
		got := math.Float32frombits(binary.LittleEndian.Uint32(m.Mem()[w.aEA+uint64(4*i):]))
		want := b + streamQ*c
		if got != want {
			return fmt.Errorf("stream: a[%d] = %g, want %g", i, got, want)
		}
	}
	return nil
}
