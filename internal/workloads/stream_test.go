package workloads

import (
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
)

func TestStreamSmall(t *testing.T) {
	runWorkload(t, "stream", map[string]string{"elements": "16384", "buffers": "1"}, false)
}

func TestStreamDoubleBuffered(t *testing.T) {
	runWorkload(t, "stream", map[string]string{"elements": "16384", "buffers": "2"}, false)
}

func TestStreamTracedTraffic(t *testing.T) {
	_, tr := runWorkload(t, "stream", map[string]string{"elements": "32768"}, true)
	s := analyzer.Summarize(tr)
	var in, out uint64
	for _, d := range s.DMA {
		in += d.BytesIn
		out += d.BytesOut
	}
	// Reads: b and c (2 x elements x 4B); writes: a (elements x 4B).
	if in != 2*32768*4 || out != 32768*4 {
		t.Fatalf("bytes in/out = %d/%d", in, out)
	}
}

func TestStreamBandwidthBound(t *testing.T) {
	// With 8 SPEs the run must approach the memory-interface limit:
	// moving 12 bytes/element through an 8 B/cycle controller needs at
	// least elements*12/8 cycles.
	w := NewStream()
	const elements = 65536
	if err := w.Configure(map[string]string{"elements": "65536"}); err != nil {
		t.Fatal(err)
	}
	m, _ := runWorkload(t, "stream", map[string]string{"elements": "65536"}, false)
	floor := uint64(elements * 12 / 8)
	if m.Now() < floor {
		t.Fatalf("run of %d cycles beat the bandwidth floor %d", m.Now(), floor)
	}
	if m.Now() > floor*4 {
		t.Fatalf("run of %d cycles is far above the bandwidth floor %d; streaming broken", m.Now(), floor)
	}
}

func TestStreamPartitionRemainder(t *testing.T) {
	// 3 chunks over 8 SPEs: most SPEs get no work and must exit cleanly.
	runWorkload(t, "stream", map[string]string{"elements": "12288"}, false)
}

func TestStreamConfigValidation(t *testing.T) {
	w := NewStream()
	for _, bad := range []map[string]string{
		{"elements": "1000"}, // not multiple of chunk
		{"elements": "0"},
		{"buffers": "3"},
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}
