package workloads

import (
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
)

// Synthetic is the controlled event-rate generator used by the tracing-
// overhead experiments: every SPE computes Gap cycles then records one
// user event, Events times. The event rate is therefore known exactly
// (one event per Gap(+instrumentation) cycles per SPE), which makes
// overhead-vs-rate and buffer-size sweeps interpretable.
type Synthetic struct {
	Events int // user events per SPE
	Gap    int // compute cycles between events

	sink uint64
}

// NewSynthetic returns the default 10k-events, 1000-cycle-gap generator.
func NewSynthetic() *Synthetic { return &Synthetic{Events: 10000, Gap: 1000} }

func (w *Synthetic) Name() string { return "synthetic" }

func (w *Synthetic) Description() string {
	return "controlled user-event rate generator for overhead experiments"
}

func (w *Synthetic) Configure(params map[string]string) error {
	if err := checkKnown(params, "events", "gap"); err != nil {
		return err
	}
	if err := intParam(params, "events", &w.Events); err != nil {
		return err
	}
	if err := intParam(params, "gap", &w.Gap); err != nil {
		return err
	}
	if w.Events <= 0 || w.Gap < 0 {
		return fmt.Errorf("synthetic: events must be positive and gap non-negative")
	}
	return nil
}

func (w *Synthetic) Params() map[string]string {
	return map[string]string{"events": fmt.Sprint(w.Events), "gap": fmt.Sprint(w.Gap)}
}

func (w *Synthetic) Prepare(m *cell.Machine) error {
	w.sink = m.Alloc(8, 8)
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for s := 0; s < m.NumSPEs(); s++ {
			hs = append(hs, h.Run(s, "synthetic", func(spu cell.SPU) uint32 {
				for i := 0; i < w.Events; i++ {
					spu.Compute(uint64(w.Gap))
					core.User(spu, 1, uint64(i), 0)
				}
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
		h.Machine().WriteWord64(w.sink, uint64(w.Events))
	})
	return nil
}

func (w *Synthetic) Verify(m *cell.Machine) error {
	if got := m.ReadWord64(w.sink); got != uint64(w.Events) {
		return fmt.Errorf("synthetic: sink = %d, want %d", got, w.Events)
	}
	return nil
}
