package workloads

import (
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/cellsync"
)

// TaskFarm is the self-scheduling task-farm pattern over a main-storage
// message queue: the PPE publishes task descriptors (block index +
// iteration weight) into an MPMC queue, SPE workers claim tasks, fetch the
// block, hash it for the prescribed number of rounds, and push (task,
// digest) results into a second queue the PPE drains. Unlike the Julia
// work queue (a bare atomic counter), the farm moves real descriptors
// both ways with no PPE-per-task mailbox traffic — the pattern the sync
// substrate exists for.
type TaskFarm struct {
	Tasks      int
	BlockBytes int
	Seed       int

	inEA     uint64
	tasks    *cellsync.MsgQueue
	results  *cellsync.MsgQueue
	rounds   []uint32 // per-task hash rounds (skewed weights)
	digests  map[uint32]uint32
	expected map[uint32]uint32
}

// NewTaskFarm returns the default 64-task, 4 KiB-block farm.
func NewTaskFarm() *TaskFarm { return &TaskFarm{Tasks: 64, BlockBytes: 4096, Seed: 51} }

func (w *TaskFarm) Name() string { return "taskfarm" }

func (w *TaskFarm) Description() string {
	return "self-scheduling task farm over main-storage MPMC queues"
}

func (w *TaskFarm) Configure(params map[string]string) error {
	if err := checkKnown(params, "tasks", "blockbytes", "seed"); err != nil {
		return err
	}
	for key, dst := range map[string]*int{"tasks": &w.Tasks, "blockbytes": &w.BlockBytes, "seed": &w.Seed} {
		if err := intParam(params, key, dst); err != nil {
			return err
		}
	}
	if w.Tasks <= 0 || w.Tasks >= 1<<16 {
		return fmt.Errorf("taskfarm: tasks=%d out of range", w.Tasks)
	}
	if w.BlockBytes <= 0 || w.BlockBytes%16 != 0 || w.BlockBytes > cell.MaxDMASize {
		return fmt.Errorf("taskfarm: blockbytes=%d must be a multiple of 16 within the DMA limit", w.BlockBytes)
	}
	return nil
}

func (w *TaskFarm) Params() map[string]string {
	return map[string]string{
		"tasks": fmt.Sprint(w.Tasks), "blockbytes": fmt.Sprint(w.BlockBytes), "seed": fmt.Sprint(w.Seed),
	}
}

// fnvRounds hashes block for the given number of rounds (shared with the
// host-side expected-result computation).
func fnvRounds(block []byte, rounds uint32) uint32 {
	h := uint32(2166136261)
	for r := uint32(0); r < rounds; r++ {
		for _, b := range block {
			h = (h ^ uint32(b)) * 16777619
		}
	}
	return h
}

// Task and result encoding in queue words.
func packTask(id uint16, rounds uint32) uint64 { return uint64(id)<<32 | uint64(rounds) }
func unpackTask(v uint64) (uint16, uint32)     { return uint16(v >> 32), uint32(v) }
func packResult(id uint16, digest uint32) uint64 {
	return uint64(id)<<32 | uint64(digest)
}
func unpackResult(v uint64) (uint16, uint32) { return uint16(v >> 32), uint32(v) }

// poison tells a worker to exit.
const poison = ^uint64(0)

func (w *TaskFarm) Prepare(m *cell.Machine) error {
	w.inEA = m.Alloc(w.Tasks*w.BlockBytes, 128)
	lcg(m.Mem()[w.inEA:w.inEA+uint64(w.Tasks*w.BlockBytes)], uint32(w.Seed))
	w.tasks = cellsync.NewMsgQueue(m, 1, 16)
	w.results = cellsync.NewMsgQueue(m, 2, 16)
	w.digests = map[uint32]uint32{}
	w.expected = map[uint32]uint32{}
	w.rounds = make([]uint32, w.Tasks)
	x := uint32(w.Seed)
	for t := 0; t < w.Tasks; t++ {
		x = x*1664525 + 1013904223
		w.rounds[t] = 1 + x%8 // skewed task weights
		block := m.Mem()[w.inEA+uint64(t*w.BlockBytes) : w.inEA+uint64((t+1)*w.BlockBytes)]
		w.expected[uint32(t)] = fnvRounds(block, w.rounds[t])
	}

	nspe := m.NumSPEs()
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for s := 0; s < nspe; s++ {
			hs = append(hs, h.Run(s, "taskfarm", func(spu cell.SPU) uint32 {
				return w.workerMain(spu)
			}))
		}
		// Publishing and draining must proceed concurrently: with both
		// queues bounded, a single PPE thread doing one then the other
		// livelocks once workers fill the result queue while the task
		// queue is still full. A second PPE thread feeds the farm.
		h.Spawn("ppe:feeder", func(h2 cell.Host) {
			for t := 0; t < w.Tasks; t++ {
				w.tasks.Put(h2, packTask(uint16(t), w.rounds[t]))
			}
			for s := 0; s < nspe; s++ {
				w.tasks.Put(h2, poison)
			}
		})
		// Drain results on the main thread.
		for r := 0; r < w.Tasks; r++ {
			id, digest := unpackResult(w.results.Get(h))
			w.digests[uint32(id)] = digest
		}
		for _, hd := range hs {
			if code := h.Wait(hd); code != 0 {
				panic(fmt.Sprintf("taskfarm: worker exited with %d", code))
			}
		}
	})
	return nil
}

func (w *TaskFarm) workerMain(spu cell.SPU) uint32 {
	ls := spu.LS()
	for {
		v := w.tasks.Get(spu)
		if v == poison {
			return 0
		}
		id, rounds := unpackTask(v)
		spu.Get(0, w.inEA+uint64(int(id)*w.BlockBytes), w.BlockBytes, 0)
		spu.WaitTagAll(1)
		digest := fnvRounds(ls[:w.BlockBytes], rounds)
		// ~2 cycles per hashed byte per round.
		spu.Compute(2 * uint64(w.BlockBytes) * uint64(rounds))
		w.results.Put(spu, packResult(id, digest))
	}
}

func (w *TaskFarm) Verify(m *cell.Machine) error {
	if len(w.digests) != w.Tasks {
		return fmt.Errorf("taskfarm: %d results, want %d", len(w.digests), w.Tasks)
	}
	for id, want := range w.expected {
		if got, ok := w.digests[id]; !ok || got != want {
			return fmt.Errorf("taskfarm: task %d digest = %#x, want %#x", id, w.digests[id], want)
		}
	}
	return nil
}
