package workloads

import (
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
)

func TestTaskFarmSmall(t *testing.T) {
	runWorkload(t, "taskfarm", map[string]string{"tasks": "16", "blockbytes": "512"}, false)
}

func TestTaskFarmDefault(t *testing.T) {
	runWorkload(t, "taskfarm", nil, false)
}

func TestTaskFarmMoreTasksThanQueueCapacity(t *testing.T) {
	// 64 tasks through a 16-slot queue: backpressure path exercised.
	runWorkload(t, "taskfarm", map[string]string{"tasks": "64", "blockbytes": "256"}, false)
}

func TestTaskFarmTraced(t *testing.T) {
	_, tr := runWorkload(t, "taskfarm", map[string]string{"tasks": "24", "blockbytes": "1024"}, true)
	if errs := analyzer.Errors(analyzer.Validate(tr)); len(errs) != 0 {
		t.Fatalf("validation: %v", errs)
	}
	s := analyzer.Summarize(tr)
	if s.TotalState(analyzer.StateStallSync) == 0 {
		t.Fatal("queue operations produced no sync-wait time")
	}
	var gets int
	for _, d := range s.DMA {
		gets += d.Gets
	}
	if gets != 24 {
		t.Fatalf("GETs = %d, want 24 (one per task)", gets)
	}
}

func TestTaskFarmConfigValidation(t *testing.T) {
	w := NewTaskFarm()
	for _, bad := range []map[string]string{
		{"tasks": "0"},
		{"tasks": "70000"},
		{"blockbytes": "100"},
		{"blockbytes": "32768"},
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestFnvRoundsDeterministic(t *testing.T) {
	block := []byte("abcdef0123456789")
	a := fnvRounds(block, 3)
	b := fnvRounds(block, 3)
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if fnvRounds(block, 1) == fnvRounds(block, 2) {
		t.Fatal("rounds have no effect")
	}
}

func TestTaskPackUnpack(t *testing.T) {
	id, rounds := unpackTask(packTask(513, 0xDEADBEEF))
	if id != 513 || rounds != 0xDEADBEEF {
		t.Fatalf("round trip = %d, %#x", id, rounds)
	}
	rid, digest := unpackResult(packResult(7, 0xCAFE))
	if rid != 7 || digest != 0xCAFE {
		t.Fatalf("result round trip = %d, %#x", rid, digest)
	}
}
