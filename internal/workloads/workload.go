// Package workloads implements the Cell applications used by the paper's
// use cases and overhead evaluation: a blocked matrix multiply (single- or
// double-buffered DMA), a batched FFT, an SPE-to-SPE stream pipeline, a
// Julia-set renderer (static or dynamic partitioning), and a histogram
// reduction. Every workload moves real data through the machine model and
// verifies its numeric result after the run, so instrumentation bugs that
// perturb semantics fail tests immediately.
//
// Workloads are written against the cell.SPU / cell.Host interfaces and
// therefore run identically traced and untraced — the property the
// tracing-overhead experiments depend on.
package workloads

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/celltrace/pdt/internal/cell"
)

// Workload is one configurable, self-verifying benchmark.
type Workload interface {
	// Name is the registry key.
	Name() string
	// Description is a one-line summary for CLI listings.
	Description() string
	// Configure applies string parameters; unknown keys or bad values
	// are errors. Call before Prepare.
	Configure(params map[string]string) error
	// Params reports the effective configuration (for trace metadata).
	Params() map[string]string
	// Prepare allocates inputs in machine memory and installs the PPE
	// main program via m.RunMain. SPE count is taken from the machine.
	Prepare(m *cell.Machine) error
	// Verify checks the computed output after m.Run returns.
	Verify(m *cell.Machine) error
}

// factories maps workload names to constructors.
var factories = map[string]func() Workload{
	"matmul":    func() Workload { return NewMatmul() },
	"fft":       func() Workload { return NewFFT() },
	"pipeline":  func() Workload { return NewPipeline() },
	"julia":     func() Workload { return NewJulia() },
	"histogram": func() Workload { return NewHistogram() },
	"synthetic": func() Workload { return NewSynthetic() },
	"stream":    func() Workload { return NewStream() },
	"stencil":   func() Workload { return NewStencil() },
	"sort":      func() Workload { return NewSort() },
	"nbody":     func() Workload { return NewNBody() },
	"taskfarm":  func() Workload { return NewTaskFarm() },
}

// New instantiates a registered workload with default parameters.
func New(name string) (Workload, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered workloads, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FlopsPerCycle is the modeled SPE single-precision throughput (4-wide
// FMA: 8 flops/cycle, 25.6 GFLOPS at 3.2 GHz).
const FlopsPerCycle = 8

// flopCycles converts a flop count to modeled SPU cycles.
func flopCycles(flops uint64) uint64 {
	c := flops / FlopsPerCycle
	if c == 0 {
		c = 1
	}
	return c
}

// intParam parses params[key] into *dst when present.
func intParam(params map[string]string, key string, dst *int) error {
	s, ok := params[key]
	if !ok {
		return nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("workloads: parameter %s=%q: %v", key, s, err)
	}
	*dst = v
	return nil
}

// stringParam copies params[key] into *dst when present.
func stringParam(params map[string]string, key string, dst *string) {
	if s, ok := params[key]; ok {
		*dst = s
	}
}

// checkKnown rejects unknown parameter keys.
func checkKnown(params map[string]string, known ...string) error {
	for k := range params {
		ok := false
		for _, kn := range known {
			if k == kn {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("workloads: unknown parameter %q (known: %v)", k, known)
		}
	}
	return nil
}

// lcg fills dst with a deterministic byte stream from seed.
func lcg(dst []byte, seed uint32) {
	x := seed | 1
	for i := range dst {
		x = x*1664525 + 1013904223
		dst[i] = byte(x >> 24)
	}
}

// lcgFloats fills dst with deterministic floats in [-1, 1).
func lcgFloats(dst []float32, seed uint32) {
	x := seed | 1
	for i := range dst {
		x = x*1664525 + 1013904223
		dst[i] = float32(int32(x))/(1<<31) + 0
	}
}

// partition splits n items into per-worker contiguous [start,end) ranges.
func partition(n, workers, idx int) (start, end int) {
	per := n / workers
	rem := n % workers
	start = idx*per + min(idx, rem)
	size := per
	if idx < rem {
		size++
	}
	return start, start + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
