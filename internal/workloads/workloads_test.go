package workloads

import (
	"bytes"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
)

// runWorkload configures, prepares, runs and verifies a workload on a
// fresh machine, optionally traced, returning machine and trace.
func runWorkload(t *testing.T, name string, params map[string]string, traced bool) (*cell.Machine, *analyzer.Trace) {
	t.Helper()
	w, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Configure(params); err != nil {
		t.Fatal(err)
	}
	mc := cell.DefaultConfig()
	mc.MemSize = 64 * cell.MiB
	m := cell.NewMachine(mc)
	var s *core.Session
	if traced {
		cfg := core.DefaultTraceConfig()
		cfg.Workload = name
		cfg.Params = w.Params()
		s = core.NewSession(m, cfg)
		s.Attach()
	}
	if err := w.Prepare(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
	var tr *analyzer.Trace
	if traced {
		var buf bytes.Buffer
		if err := s.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		tr, err = analyzer.Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if errs := analyzer.Errors(analyzer.Validate(tr)); len(errs) != 0 {
			t.Fatalf("trace validation: %v", errs)
		}
	}
	return m, tr
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		w, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != n {
			t.Fatalf("Name() = %q, want %q", w.Name(), n)
		}
		if w.Description() == "" {
			t.Fatalf("%s has no description", n)
		}
		if len(w.Params()) == 0 {
			t.Fatalf("%s has no params", n)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllWorkloadsRejectUnknownParam(t *testing.T) {
	for _, n := range Names() {
		w, _ := New(n)
		if err := w.Configure(map[string]string{"definitely-bogus": "1"}); err == nil {
			t.Fatalf("%s accepted a bogus parameter", n)
		}
	}
}

func TestPartition(t *testing.T) {
	covered := map[int]bool{}
	for w := 0; w < 5; w++ {
		s, e := partition(23, 5, w)
		if e < s {
			t.Fatalf("worker %d: [%d,%d)", w, s, e)
		}
		for i := s; i < e; i++ {
			if covered[i] {
				t.Fatalf("item %d covered twice", i)
			}
			covered[i] = true
		}
	}
	if len(covered) != 23 {
		t.Fatalf("covered %d of 23", len(covered))
	}
}

func TestMatmulSmallUntraced(t *testing.T) {
	runWorkload(t, "matmul", map[string]string{"n": "64", "t": "16", "buffers": "1"}, false)
}

func TestMatmulDoubleBufferedTraced(t *testing.T) {
	_, tr := runWorkload(t, "matmul", map[string]string{"n": "128", "t": "32", "buffers": "2"}, true)
	s := analyzer.Summarize(tr)
	if len(s.Runs) != 8 {
		t.Fatalf("runs = %d", len(s.Runs))
	}
	var gets int
	for _, d := range s.DMA {
		gets += d.Gets
	}
	// 16 C tiles, 4 k-steps, 2 operand fetches each = 128 GETs total.
	if gets != 128 {
		t.Fatalf("total GETs = %d, want 128", gets)
	}
}

func TestMatmulFullVerification(t *testing.T) {
	// Exhaustively verify a tiny instance against the reference.
	w := NewMatmul()
	if err := w.Configure(map[string]string{"n": "32", "t": "8"}); err != nil {
		t.Fatal(err)
	}
	mc := cell.DefaultConfig()
	mc.MemSize = 16 * cell.MiB
	m := cell.NewMachine(mc)
	if err := w.Prepare(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestMatmulDoubleBufferFaster(t *testing.T) {
	run := func(buffers string) uint64 {
		m, _ := runWorkload(t, "matmul", map[string]string{"n": "128", "t": "32", "buffers": buffers}, false)
		return m.Now()
	}
	single := run("1")
	double := run("2")
	if double >= single {
		t.Fatalf("double buffering (%d cycles) not faster than single (%d)", double, single)
	}
}

func TestMatmulConfigValidation(t *testing.T) {
	w := NewMatmul()
	for _, bad := range []map[string]string{
		{"n": "100", "t": "64"},  // N not multiple of T
		{"t": "3"},               // not multiple of 4
		{"t": "128", "n": "256"}, // tile exceeds DMA limit
		{"buffers": "3"},         // invalid
		{"n": "abc"},             // parse error
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestFFTSmall(t *testing.T) {
	runWorkload(t, "fft", map[string]string{"n": "256", "batches": "16"}, false)
}

func TestFFTTraced(t *testing.T) {
	_, tr := runWorkload(t, "fft", map[string]string{"n": "1024", "batches": "16"}, true)
	s := analyzer.Summarize(tr)
	var in, out uint64
	for _, d := range s.DMA {
		in += d.BytesIn
		out += d.BytesOut
	}
	want := uint64(16 * 1024 * 8)
	if in != want || out != want {
		t.Fatalf("bytes in/out = %d/%d, want %d", in, out, want)
	}
}

func TestFFTConfigValidation(t *testing.T) {
	w := NewFFT()
	for _, bad := range []map[string]string{
		{"n": "100"},     // not power of two
		{"n": "2"},       // too small
		{"batches": "0"}, // zero
		{"n": "65536"},   // batch too large for LS budget
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestFFTInPlaceMatchesReference(t *testing.T) {
	const n = 64
	re := make([]float32, n)
	im := make([]float32, n)
	lcgFloats(re, 11)
	lcgFloats(im, 22)
	ref := make([]complex128, n)
	for i := range ref {
		ref[i] = complex(float64(re[i]), float64(im[i]))
	}
	want := refFFT(ref)
	fftInPlace(re, im)
	for i := range want {
		if d := float64(re[i]) - real(want[i]); d > 1e-3 || d < -1e-3 {
			t.Fatalf("re[%d] = %g, want %g", i, re[i], real(want[i]))
		}
		if d := float64(im[i]) - imag(want[i]); d > 1e-3 || d < -1e-3 {
			t.Fatalf("im[%d] = %g, want %g", i, im[i], imag(want[i]))
		}
	}
}

func TestPipelineBalanced(t *testing.T) {
	runWorkload(t, "pipeline", map[string]string{"blocks": "16", "blockbytes": "1024"}, false)
}

func TestPipelineSlowStageTraced(t *testing.T) {
	_, tr := runWorkload(t, "pipeline",
		map[string]string{"blocks": "24", "blockbytes": "2048", "slowstage": "3", "slowfactor": "16"}, true)
	s := analyzer.Summarize(tr)
	// The slow stage must have the highest busy time of all stages.
	var slowBusy, maxOther uint64
	for _, r := range s.Runs {
		if r.Core == 3 {
			slowBusy = r.Busy()
		} else if r.Busy() > maxOther {
			maxOther = r.Busy()
		}
	}
	if slowBusy <= maxOther {
		t.Fatalf("slow stage busy %d not above other stages' max %d", slowBusy, maxOther)
	}
}

func TestPipelineFourStages(t *testing.T) {
	runWorkload(t, "pipeline", map[string]string{"stages": "4", "blocks": "12", "blockbytes": "512"}, false)
}

func TestPipelineConfigValidation(t *testing.T) {
	w := NewPipeline()
	for _, bad := range []map[string]string{
		{"blockbytes": "100"},   // not multiple of 16
		{"blockbytes": "32768"}, // over DMA limit
		{"blocks": "0"},
		{"slowfactor": "0"},
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestJuliaStatic(t *testing.T) {
	runWorkload(t, "julia", map[string]string{"w": "128", "h": "64", "maxiter": "64"}, false)
}

func TestJuliaDynamic(t *testing.T) {
	runWorkload(t, "julia", map[string]string{"w": "128", "h": "64", "maxiter": "64", "mode": "dynamic"}, false)
}

func TestJuliaDynamicBalancesLoad(t *testing.T) {
	imbalance := func(mode string) float64 {
		_, tr := runWorkload(t, "julia",
			map[string]string{"w": "256", "h": "128", "maxiter": "128", "mode": mode}, true)
		return analyzer.Summarize(tr).LoadImbalance
	}
	static := imbalance("static")
	dynamic := imbalance("dynamic")
	if dynamic >= static {
		t.Fatalf("dynamic imbalance %.3f not below static %.3f", dynamic, static)
	}
}

func TestJuliaDynamicFasterOnSkewedWork(t *testing.T) {
	run := func(mode string) uint64 {
		m, _ := runWorkload(t, "julia",
			map[string]string{"w": "256", "h": "128", "maxiter": "128", "mode": mode}, false)
		return m.Now()
	}
	static := run("static")
	dynamic := run("dynamic")
	if dynamic >= static {
		t.Fatalf("dynamic (%d cycles) not faster than static (%d)", dynamic, static)
	}
}

func TestJuliaConfigValidation(t *testing.T) {
	w := NewJulia()
	for _, bad := range []map[string]string{
		{"w": "100"},       // not multiple of 16
		{"maxiter": "300"}, // > 255
		{"mode": "magic"},  // unknown
		{"h": "0"},
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestHistogramAtomic(t *testing.T) {
	runWorkload(t, "histogram", map[string]string{"size": "262144"}, false)
}

func TestHistogramPPEReduce(t *testing.T) {
	runWorkload(t, "histogram", map[string]string{"size": "262144", "reduce": "ppe"}, false)
}

func TestHistogramTracedAtomicEvents(t *testing.T) {
	_, tr := runWorkload(t, "histogram", map[string]string{"size": "131072"}, true)
	s := analyzer.Summarize(tr)
	if s.TotalState(analyzer.StateStallSync) == 0 {
		t.Fatal("atomic reduce produced no sync-wait time")
	}
}

func TestHistogramConfigValidation(t *testing.T) {
	w := NewHistogram()
	for _, bad := range []map[string]string{
		{"size": "100"}, // not multiple of 16
		{"size": "0"},
		{"reduce": "tree"}, // unknown
	} {
		if err := w.Configure(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestWorkloadsTracedVsUntracedSameResult(t *testing.T) {
	// Tracing must not change computed results, only timing.
	for _, tc := range []struct {
		name   string
		params map[string]string
	}{
		{"matmul", map[string]string{"n": "64", "t": "16"}},
		{"fft", map[string]string{"n": "256", "batches": "8"}},
		{"pipeline", map[string]string{"blocks": "8", "blockbytes": "512"}},
		{"julia", map[string]string{"w": "64", "h": "32", "maxiter": "32"}},
		{"histogram", map[string]string{"size": "65536"}},
	} {
		runWorkload(t, tc.name, tc.params, false)
		runWorkload(t, tc.name, tc.params, true) // Verify() runs in both
	}
}
